"""Edge-case suite for the exchange layer (router, fleet, failover, HTTP).

The conformance suite pins the big claim — distributed serving is
outcome-identical to the uncached serial reference.  This file pins the
sharp edges around that claim: rendezvous routing stability under fleet
membership changes, scatter/gather index remapping for multi-database
envelopes, mid-stream node death (no outcome lost, duplicated, or leaked
into another envelope's stream), strict registration, drain vs kill
semantics, identity-preserving replacement, and the HTTP transport's wire
behavior (including its stats round-trip).
"""

from __future__ import annotations

import pytest

from faults import drain_with_kill
from repro.exceptions import ReproError
from repro.graphdb import generators
from repro.service import (
    EnvelopePart,
    LanguageCache,
    LocalExchange,
    NodeManager,
    Router,
    ThreadExchange,
    Workload,
    WorkloadEnvelope,
    resilience_serve,
)
from repro.service.exchange import (
    HttpExchange,
    HttpNodeLauncher,
    NodeStats,
    ThreadNode,
    ThreadNodeLauncher,
)

QUERIES = ("ax*b", "ab|bc", "aa", "(ab)*a", "ε|a", "((")


@pytest.fixture(scope="module")
def set_db():
    return generators.random_labelled_graph(5, 14, "abxy", seed=3)


@pytest.fixture(scope="module")
def bag_db():
    return generators.random_labelled_graph(4, 10, "abx", seed=5).to_bag(2)


def reference(database):
    return resilience_serve(
        Workload.coerce(QUERIES),
        database,
        parallel=False,
        cache=LanguageCache(canonical=False),
    )


def sorted_outcomes(outcomes):
    return sorted(outcomes, key=lambda outcome: outcome.index)


# --------------------------------------------------------------------- router


def test_router_is_deterministic_and_total():
    router = Router()
    nodes = [f"node-{i}" for i in range(5)]
    keys = [f"fingerprint-{i}" for i in range(100)]
    first = {key: router.route(key, nodes) for key in keys}
    second = {key: router.route(key, list(reversed(nodes))) for key in keys}
    assert first == second, "routing must not depend on candidate order"
    assert set(first.values()) == set(nodes), (
        "100 keys over 5 nodes should touch every node"
    )


def test_router_leave_moves_only_the_dead_nodes_keys():
    router = Router()
    nodes = [f"node-{i}" for i in range(4)]
    keys = [f"db-{i}" for i in range(200)]
    before = {key: router.route(key, nodes) for key in keys}
    survivors = [node for node in nodes if node != "node-2"]
    after = {key: router.route(key, survivors) for key in keys}
    for key in keys:
        if before[key] != "node-2":
            assert after[key] == before[key], (
                f"{key} moved off a surviving node when node-2 left"
            )
    assert any(before[key] == "node-2" for key in keys)


def test_router_join_moves_keys_only_to_the_new_node():
    router = Router()
    nodes = [f"node-{i}" for i in range(3)]
    keys = [f"db-{i}" for i in range(200)]
    before = {key: router.route(key, nodes) for key in keys}
    after = {key: router.route(key, nodes + ["node-3"]) for key in keys}
    moved = {key for key in keys if after[key] != before[key]}
    assert moved, "a join must take over some keys"
    assert all(after[key] == "node-3" for key in moved), (
        "keys may only move to the joining node"
    )


def test_router_ranking_is_consistent_with_route():
    router = Router()
    nodes = [f"node-{i}" for i in range(4)]
    ranking = router.ranking("some-fingerprint", nodes)
    assert sorted(ranking) == sorted(nodes)
    assert ranking[0] == router.route("some-fingerprint", nodes)


def test_router_rejects_an_empty_fleet():
    with pytest.raises(ReproError):
        Router().route("fingerprint", [])


# ------------------------------------------------------------ fleet lifecycle


def test_duplicate_registration_of_a_live_id_raises(set_db):
    manager = NodeManager(ThreadNodeLauncher(max_workers=2))
    manager.spawn(1)
    with pytest.raises(ReproError, match="duplicate node registration"):
        manager.register(ThreadNode("node-0", max_workers=2))
    manager.close()


def test_dead_node_id_can_be_reregistered():
    manager = NodeManager()
    first = ThreadNode("node-0", max_workers=2)
    manager.register(first)
    first.kill()
    replacement = ThreadNode("node-0", max_workers=2)
    manager.register(replacement)
    assert manager.node("node-0") is replacement
    manager.close()


def test_drain_excludes_a_node_from_routing_but_keeps_it_alive(set_db):
    with ThreadExchange(nodes=2, max_workers=2, parallel=False) as exchange:
        owner = exchange.route_for(set_db)
        exchange.manager.drain(owner)
        assert owner not in exchange.manager.live_ids()
        assert exchange.manager.node(owner).alive, "drain is not kill"
        # New work routes to the remaining node and still serves correctly.
        outcomes = sorted_outcomes(
            exchange.submit(WorkloadEnvelope.single(Workload.coerce(QUERIES), set_db))
        )
        assert outcomes == reference(set_db)
        other = next(
            node_id for node_id in exchange.nodes() if node_id != owner
        )
        assert exchange.manager.node(other).stats().envelopes_served == 1
        assert exchange.manager.node(owner).stats().envelopes_served == 0


def test_replace_keeps_the_node_id_and_routing(set_db):
    with ThreadExchange(nodes=3, max_workers=2, parallel=False) as exchange:
        owner = exchange.route_for(set_db)
        old = exchange.manager.node(owner)
        replacement = exchange.manager.replace(owner)
        assert replacement.node_id == owner
        assert old.killed and not old.alive
        assert exchange.route_for(set_db) == owner, (
            "identity-preserving replacement keeps the rendezvous keys"
        )
        outcomes = sorted_outcomes(
            exchange.submit(WorkloadEnvelope.single(Workload.coerce(QUERIES), set_db))
        )
        assert outcomes == reference(set_db)


# -------------------------------------------------------------- thread fleet


def test_multi_database_envelope_scatters_with_correct_index_remapping(
    set_db, bag_db
):
    workload = Workload.coerce(QUERIES)
    envelope = WorkloadEnvelope(
        parts=(
            EnvelopePart(workload=workload, database=set_db),
            EnvelopePart(workload=workload, database=bag_db),
        )
    )
    with ThreadExchange(nodes=2, max_workers=2, parallel=False) as exchange:
        outcomes = sorted_outcomes(exchange.submit(envelope))
    assert [outcome.index for outcome in outcomes] == list(range(2 * len(QUERIES)))
    from dataclasses import replace

    first = outcomes[: len(QUERIES)]
    second = [
        replace(outcome, index=outcome.index - len(QUERIES))
        for outcome in outcomes[len(QUERIES):]
    ]
    assert first == reference(set_db)
    assert second == reference(bag_db)


def test_node_crash_mid_stream_loses_and_leaks_nothing(set_db):
    """Kill the owner mid-stream: every index arrives exactly once, correct,
    and a subsequent envelope's stream is untouched by the corpse."""
    with ThreadExchange(nodes=2, max_workers=2, parallel=False) as exchange:
        owner = exchange.route_for(set_db)
        iterator = exchange.submit(
            WorkloadEnvelope.single(Workload.coerce(QUERIES), set_db)
        )
        outcomes = drain_with_kill(
            iterator, lambda: exchange.manager.kill(owner), after=2
        )
        indices = sorted(outcome.index for outcome in outcomes)
        assert indices == list(range(len(QUERIES))), "no outcome lost or duplicated"
        assert sorted_outcomes(outcomes) == reference(set_db)
        # The next envelope serves on the survivor, uncontaminated.
        again = sorted_outcomes(
            exchange.submit(WorkloadEnvelope.single(Workload.coerce(QUERIES), set_db))
        )
        assert again == reference(set_db)
        assert exchange.heartbeat()[owner] is False


def test_whole_fleet_death_without_launcher_fails_structurally(set_db):
    manager = NodeManager()
    manager.register(ThreadNode("only", max_workers=2, parallel=False))
    from repro.service.exchange import RoutedExchange

    with RoutedExchange(manager) as exchange:
        exchange.manager.kill("only")
        outcomes = sorted_outcomes(
            exchange.submit(WorkloadEnvelope.single(Workload.coerce(QUERIES), set_db))
        )
        assert [outcome.index for outcome in outcomes] == list(range(len(QUERIES)))
        assert all(outcome.status == "error" for outcome in outcomes)
        assert all("NodeLost" in outcome.error for outcome in outcomes)


def test_whole_fleet_death_with_launcher_auto_replaces(set_db):
    with ThreadExchange(nodes=2, max_workers=2, parallel=False) as exchange:
        for node_id in exchange.nodes():
            exchange.manager.kill(node_id)
        outcomes = sorted_outcomes(
            exchange.submit(WorkloadEnvelope.single(Workload.coerce(QUERIES), set_db))
        )
        assert outcomes == reference(set_db)
        assert exchange.route_for(set_db) in exchange.manager.live_ids()


def test_closed_exchange_refuses_submissions(set_db):
    exchange = ThreadExchange(nodes=1, max_workers=2, parallel=False)
    exchange.close()
    with pytest.raises(ReproError):
        exchange.submit(WorkloadEnvelope.single(Workload.coerce(["aa"]), set_db))


def test_local_exchange_multi_part_remaps_indices(set_db):
    workload = Workload.coerce(QUERIES)
    envelope = WorkloadEnvelope(
        parts=(
            EnvelopePart(workload=workload, database=set_db),
            EnvelopePart(workload=Workload.coerce(["aa"]), database=set_db),
        )
    )
    with LocalExchange(set_db, parallel=False) as exchange:
        outcomes = sorted_outcomes(exchange.submit(envelope))
    assert [outcome.index for outcome in outcomes] == list(range(len(QUERIES) + 1))
    assert outcomes[: len(QUERIES)] == reference(set_db)


# ---------------------------------------------------------------- HTTP fleet


def test_http_exchange_end_to_end_and_stats_roundtrip(set_db):
    with HttpExchange(nodes=2, max_workers=2, parallel=False) as exchange:
        outcomes = sorted_outcomes(
            exchange.submit(WorkloadEnvelope.single(Workload.coerce(QUERIES), set_db))
        )
        assert outcomes == reference(set_db)
        snapshots = exchange.stats()
        assert {snapshot.node_id for snapshot in snapshots} == {"node-0", "node-1"}
        assert all(snapshot.alive for snapshot in snapshots)
        assert sum(snapshot.envelopes_served for snapshot in snapshots) == 1
        assert sum(snapshot.databases for snapshot in snapshots) == 1
        for snapshot in snapshots:
            rebuilt = NodeStats.from_dict(snapshot.as_dict())
            assert rebuilt == snapshot


def test_http_node_kill_fails_over_to_the_survivor(set_db):
    manager = NodeManager(HttpNodeLauncher(max_workers=2, parallel=False))
    from repro.service.exchange import RoutedExchange

    with RoutedExchange(manager) as exchange:
        manager.spawn(2)
        owner = exchange.route_for(set_db)
        iterator = exchange.submit(
            WorkloadEnvelope.single(Workload.coerce(QUERIES), set_db)
        )
        outcomes = drain_with_kill(
            iterator, lambda: exchange.manager.kill(owner), after=1
        )
        indices = sorted(outcome.index for outcome in outcomes)
        assert indices == list(range(len(QUERIES)))
        assert sorted_outcomes(outcomes) == reference(set_db)
        assert exchange.heartbeat()[owner] is False
