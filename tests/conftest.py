"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.graphdb import GraphDatabase
from repro.languages import Language


@pytest.fixture
def local_language() -> Language:
    return Language.from_regex("ab|ad|cd")


@pytest.fixture
def star_language() -> Language:
    return Language.from_regex("ax*b")


@pytest.fixture
def aa_language() -> Language:
    return Language.from_regex("aa")


@pytest.fixture
def small_database() -> GraphDatabase:
    return GraphDatabase.from_edges(
        [
            ("s", "a", "u"),
            ("u", "x", "v"),
            ("v", "x", "w"),
            ("w", "b", "t"),
            ("u", "b", "t"),
        ]
    )


def assert_same_language(left, right, samples):
    """Assert two languages agree on a collection of sample words."""
    for word in samples:
        assert (word in left) == (word in right), word
