"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.graphdb import GraphDatabase
from repro.languages import Language

from leak_sanitizer import SANITIZED_MODULES, LeakTracker, sanitizer_enabled


def _sanitized(item) -> bool:
    module = getattr(item, "module", None)
    if module is None:
        return False
    name = getattr(module, "__name__", "").rpartition(".")[2]
    return name in SANITIZED_MODULES and sanitizer_enabled()


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_setup(item):
    # Start tracking before fixture setup so resources created by fixtures
    # are inside the window their finalizers must close by teardown.
    if _sanitized(item):
        tracker = LeakTracker()
        tracker.start()
        item._leak_tracker = tracker
    yield


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_teardown(item, nextitem):
    # The wrapped call runs fixture finalizers; the leak check afterwards
    # sees the world as the test promised to leave it.
    yield
    tracker = getattr(item, "_leak_tracker", None)
    if tracker is None:
        return
    del item._leak_tracker
    tracker.stop()
    leaks = tracker.leaks()
    if leaks:
        pytest.fail(
            "leak sanitizer: resources survived the test:\n  "
            + "\n  ".join(leaks),
            pytrace=False,
        )


@pytest.fixture
def local_language() -> Language:
    return Language.from_regex("ab|ad|cd")


@pytest.fixture
def star_language() -> Language:
    return Language.from_regex("ax*b")


@pytest.fixture
def aa_language() -> Language:
    return Language.from_regex("aa")


@pytest.fixture
def small_database() -> GraphDatabase:
    return GraphDatabase.from_edges(
        [
            ("s", "a", "u"),
            ("u", "x", "v"),
            ("v", "x", "w"),
            ("w", "b", "t"),
            ("u", "b", "t"),
        ]
    )


def assert_same_language(left, right, samples):
    """Assert two languages agree on a collection of sample words."""
    for word in samples:
        assert (word in left) == (word in right), word
