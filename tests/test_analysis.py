"""Tests for ``repro.analysis``: per-rule fixtures, pragmas, baseline, CLI.

Every checker gets at least one known-bad snippet it must flag and one
known-good snippet it must pass; the pragma and baseline machinery is
round-tripped; and the analyzer is held to its own standard — both the
analysis package and the whole of ``src`` must lint clean.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis import (
    analyze_paths,
    analyze_source,
    apply_baseline,
    load_baseline,
    rule_catalogue,
    write_baseline,
)
from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent

FLOW = "src/repro/flow/mod.py"
SERVICE = "src/repro/service/mod.py"
GRAPHDB = "src/repro/graphdb/mod.py"
LANGUAGES = "src/repro/languages/mod.py"
NEUTRAL = "src/repro/other/mod.py"


def analyze(code: str, path: str = FLOW):
    return analyze_source(textwrap.dedent(code), path)


def rules_of(findings) -> set[str]:
    return {finding.rule for finding in findings}


# --------------------------------------------------------------- determinism


class TestDeterminism:
    def test_set_iteration_flagged(self):
        findings = analyze(
            """
            def f(items):
                out = []
                for item in set(items):
                    out.append(item)
                return out
            """
        )
        assert "det-set-iter" in rules_of(findings)

    def test_sorted_set_iteration_clean(self):
        findings = analyze(
            """
            def f(items):
                out = []
                for item in sorted(set(items)):
                    out.append(item)
                return out
            """
        )
        assert not rules_of(findings)

    def test_set_comprehension_into_list_flagged(self):
        findings = analyze("values = list({1, 2, 3})\n")
        assert "det-set-iter" in rules_of(findings)

    def test_repr_sort_flagged_outside_whitelist(self):
        findings = analyze("def f(xs):\n    return sorted(xs, key=repr)\n")
        assert "det-repr-sort" in rules_of(findings)

    def test_repr_sort_allowed_in_canonicalization_layer(self):
        findings = analyze(
            "def f(xs):\n    return sorted(xs, key=repr)\n", path=LANGUAGES
        )
        assert "det-repr-sort" not in rules_of(findings)

    def test_wallclock_flagged(self):
        findings = analyze("import time\n\nSTAMP = time.monotonic()\n")
        assert "det-wallclock" in rules_of(findings)

    def test_from_import_wallclock_flagged(self):
        findings = analyze(
            "from time import perf_counter\n\nSTAMP = perf_counter()\n"
        )
        assert "det-wallclock" in rules_of(findings)

    def test_unseeded_random_flagged_seeded_rng_clean(self):
        bad = analyze("import random\n\nVALUE = random.random()\n")
        assert "det-wallclock" in rules_of(bad)
        good = analyze(
            """
            import random

            def f(seed):
                rng = random.Random(seed)
                return rng.random()
            """
        )
        assert "det-wallclock" not in rules_of(good)

    def test_id_flagged_in_deterministic_path(self):
        findings = analyze("def f(x):\n    return id(x)\n")
        assert "det-id" in rules_of(findings)

    def test_wallclock_fine_outside_deterministic_scope(self):
        findings = analyze("import time\n\nSTAMP = time.monotonic()\n", path=NEUTRAL)
        assert not rules_of(findings)


# ----------------------------------------------------------------- exactness


class TestExactness:
    def test_float_literal_flagged(self):
        assert "exact-float-literal" in rules_of(analyze("HALF = 0.5\n"))

    def test_true_division_flagged_floor_clean(self):
        assert "exact-div" in rules_of(analyze("def f(a, b):\n    return a / b\n"))
        assert "exact-div" not in rules_of(
            analyze("def f(a, b):\n    return a // b\n")
        )

    def test_isclose_flagged(self):
        findings = analyze(
            "import math\n\ndef f(a, b):\n    return math.isclose(a, b)\n"
        )
        assert "exact-isclose" in rules_of(findings)

    def test_float_cast_flagged(self):
        assert "exact-float-cast" in rules_of(
            analyze("def f(x):\n    return float(x)\n")
        )

    def test_floats_fine_outside_flow(self):
        findings = analyze("HALF = 0.5\nTHIRD = 1 / 3\n", path=SERVICE)
        assert not rules_of(findings) & {"exact-float-literal", "exact-div"}


# --------------------------------------------------------------- concurrency


class TestConcurrency:
    def test_blocking_sleep_in_async_flagged(self):
        findings = analyze(
            """
            import time

            async def f():
                time.sleep(1)
            """,
            path=SERVICE,
        )
        assert "conc-blocking-async" in rules_of(findings)

    def test_awaited_queue_get_clean(self):
        findings = analyze(
            """
            async def f(queue):
                return await queue.get()
            """,
            path=SERVICE,
        )
        assert "conc-blocking-async" not in rules_of(findings)

    def test_bare_join_in_async_flagged(self):
        findings = analyze(
            """
            async def f(thread):
                thread.join()
            """,
            path=SERVICE,
        )
        assert "conc-blocking-async" in rules_of(findings)

    def test_sleep_in_sync_function_clean(self):
        findings = analyze(
            "import time\n\ndef f():\n    time.sleep(1)\n", path=SERVICE
        )
        assert "conc-blocking-async" not in rules_of(findings)

    UNLOCKED = """
        import threading

        class Server:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def bump(self):
                with self._lock:
                    self._count += 1

            def reset(self):
                self._count = 0
        """

    def test_unlocked_write_flagged(self):
        findings = analyze(self.UNLOCKED, path=SERVICE)
        assert "conc-unlocked-write" in rules_of(findings)

    def test_locked_suffix_method_exempt(self):
        findings = analyze(
            self.UNLOCKED.replace("def reset(self)", "def _reset_locked(self)"),
            path=SERVICE,
        )
        assert "conc-unlocked-write" not in rules_of(findings)

    def test_write_under_lock_clean(self):
        findings = analyze(
            """
            import threading

            class Server:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def reset(self):
                    with self._lock:
                        self._count = 0
            """,
            path=SERVICE,
        )
        assert "conc-unlocked-write" not in rules_of(findings)


# ---------------------------------------------------------------- ipc-safety


class TestIpcSafety:
    def test_lambda_submit_flagged(self):
        findings = analyze(
            "def f(pool):\n    return pool.submit(lambda: 1)\n", path=SERVICE
        )
        assert "ipc-lambda-dispatch" in rules_of(findings)

    def test_module_function_submit_clean(self):
        findings = analyze(
            """
            def work():
                return 1

            def f(pool):
                return pool.submit(work)
            """,
            path=SERVICE,
        )
        assert "ipc-lambda-dispatch" not in rules_of(findings)

    def test_local_class_flagged(self):
        findings = analyze(
            """
            def make():
                class Handler:
                    pass
                return Handler
            """,
            path=SERVICE,
        )
        assert "ipc-local-class" in rules_of(findings)

    def test_cache_class_without_getstate_flagged(self):
        findings = analyze(
            """
            class Database:
                def __init__(self):
                    self._cache = {}
            """,
            path=GRAPHDB,
        )
        assert "ipc-cache-pickle" in rules_of(findings)

    def test_cache_class_with_getstate_clean(self):
        findings = analyze(
            """
            class Database:
                def __init__(self):
                    self._cache = {}

                def __getstate__(self):
                    state = dict(self.__dict__)
                    state.pop("_cache")
                    return state
            """,
            path=GRAPHDB,
        )
        assert "ipc-cache-pickle" not in rules_of(findings)


# ----------------------------------------------------------- error-discipline


class TestErrorDiscipline:
    def test_bare_except_flagged(self):
        findings = analyze(
            """
            def f():
                try:
                    return 1
                except:
                    pass
            """,
            path=NEUTRAL,
        )
        assert "err-bare-except" in rules_of(findings)

    def test_swallowed_broad_except_flagged(self):
        findings = analyze(
            """
            def f():
                try:
                    return 1
                except Exception:
                    return None
            """,
            path=NEUTRAL,
        )
        assert "err-swallowed-except" in rules_of(findings)

    def test_handled_broad_except_clean(self):
        findings = analyze(
            """
            def f(log):
                try:
                    return 1
                except Exception as error:
                    log(error)
                    return None
            """,
            path=NEUTRAL,
        )
        assert "err-swallowed-except" not in rules_of(findings)

    def test_narrow_swallow_clean(self):
        findings = analyze(
            """
            def f():
                try:
                    return 1
                except KeyError:
                    return None
            """,
            path=NEUTRAL,
        )
        assert not rules_of(findings)

    def test_bare_runtime_error_flagged(self):
        findings = analyze(
            'def f():\n    raise RuntimeError("broken")\n', path=NEUTRAL
        )
        assert "err-bare-runtime" in rules_of(findings)

    def test_taxonomy_error_clean(self):
        findings = analyze(
            """
            from repro.exceptions import ReproError

            def f():
                raise ReproError("broken")
            """,
            path=NEUTRAL,
        )
        assert "err-bare-runtime" not in rules_of(findings)


# ------------------------------------------------------------------ dead code


class TestDeadCode:
    def test_unused_import_flagged(self):
        findings = analyze("import os\n\nVALUE = 1\n", path=NEUTRAL)
        assert "dead-import" in rules_of(findings)

    def test_used_import_clean(self):
        findings = analyze("import os\n\nVALUE = os.name\n", path=NEUTRAL)
        assert "dead-import" not in rules_of(findings)

    def test_reexport_and_dunder_all_exempt(self):
        findings = analyze(
            """
            from os import name as name
            from os import sep

            __all__ = ["sep"]
            """,
            path=NEUTRAL,
        )
        assert "dead-import" not in rules_of(findings)

    def test_string_annotation_counts_as_use(self):
        findings = analyze(
            """
            from collections.abc import Mapping

            def f(m: "Mapping[str, int]") -> None:
                return None
            """,
            path=NEUTRAL,
        )
        assert "dead-import" not in rules_of(findings)

    def test_unreferenced_private_symbol_flagged(self):
        findings = analyze(
            "def _helper():\n    return 1\n\nVALUE = 2\n", path=NEUTRAL
        )
        assert "dead-symbol" in rules_of(findings)

    def test_referenced_private_symbol_clean(self):
        findings = analyze(
            "def _helper():\n    return 1\n\nVALUE = _helper()\n", path=NEUTRAL
        )
        assert "dead-symbol" not in rules_of(findings)


# ----------------------------------------------------------------- pragmas


class TestPragmas:
    def test_trailing_pragma_suppresses(self):
        findings = analyze(
            "HALF = 0.5  # repro: allow[exact-float-literal] -- fixture\n"
        )
        assert not rules_of(findings)

    def test_pragma_above_suppresses(self):
        findings = analyze(
            "# repro: allow[exact-float-literal] -- fixture\nHALF = 0.5\n"
        )
        assert not rules_of(findings)

    def test_pragma_atop_comment_block_suppresses(self):
        findings = analyze(
            """
            # repro: allow[exact-float-literal] -- fixture justification
            # continued over a second comment line
            HALF = 0.5
            """
        )
        assert not rules_of(findings)

    def test_wrong_rule_does_not_suppress(self):
        findings = analyze("HALF = 0.5  # repro: allow[exact-div] -- wrong rule\n")
        assert rules_of(findings) == {"exact-float-literal", "pragma-unused"}

    def test_missing_reason_is_a_finding(self):
        findings = analyze("HALF = 0.5  # repro: allow[exact-float-literal]\n")
        assert "pragma-syntax" in rules_of(findings)

    def test_unused_pragma_is_a_finding(self):
        findings = analyze("VALUE = 1  # repro: allow[exact-div] -- nothing here\n")
        assert rules_of(findings) == {"pragma-unused"}

    def test_wildcard_pragma_suppresses_everything(self):
        findings = analyze("HALF = float(1) / 2  # repro: allow[*] -- fixture\n")
        assert not rules_of(findings)


# ----------------------------------------------------------------- baseline


class TestBaseline:
    def test_round_trip(self, tmp_path):
        source_file = tmp_path / "repro" / "flow" / "mod.py"
        source_file.parent.mkdir(parents=True)
        source_file.write_text("HALF = 0.5\n")
        findings, scanned = analyze_paths([str(tmp_path)])
        assert scanned == 1 and rules_of(findings) == {"exact-float-literal"}

        baseline_file = tmp_path / "baseline.json"
        write_baseline(findings, str(baseline_file))
        result = apply_baseline(findings, load_baseline(str(baseline_file)))
        assert not result.new
        assert len(result.suppressed) == 1
        assert not result.stale

    def test_baseline_survives_line_shift_not_edits(self, tmp_path):
        source_file = tmp_path / "repro" / "flow" / "mod.py"
        source_file.parent.mkdir(parents=True)
        source_file.write_text("HALF = 0.5\n")
        findings, _ = analyze_paths([str(tmp_path)])
        baseline_file = tmp_path / "baseline.json"
        write_baseline(findings, str(baseline_file))

        source_file.write_text("# a new leading comment\nHALF = 0.5\n")
        shifted, _ = analyze_paths([str(tmp_path)])
        result = apply_baseline(shifted, load_baseline(str(baseline_file)))
        assert not result.new and len(result.suppressed) == 1

        source_file.write_text("QUARTER = 0.25\n")
        edited, _ = analyze_paths([str(tmp_path)])
        result = apply_baseline(edited, load_baseline(str(baseline_file)))
        assert len(result.new) == 1 and result.stale

    def test_stale_entry_detected(self, tmp_path):
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "rule": "exact-div",
                            "path": "src/repro/flow/gone.py",
                            "snippet": "x = a / b",
                            "count": 1,
                        }
                    ],
                }
            )
        )
        result = apply_baseline([], load_baseline(str(baseline_file)))
        assert result.stale == [
            ("exact-div", "src/repro/flow/gone.py", "x = a / b")
        ]


# ---------------------------------------------------------------------- CLI


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("VALUE = 1\n")
        assert main([str(target), "--no-baseline"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        target = tmp_path / "repro" / "flow" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("HALF = 0.5\n")
        assert main([str(tmp_path), "--no-baseline"]) == 1
        assert "exact-float-literal" in capsys.readouterr().out

    def test_bad_path_and_bad_rule_exit_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "missing")]) == 2
        assert main([str(tmp_path), "--select", "no-such-rule"]) == 2
        capsys.readouterr()

    def test_json_format_parses(self, tmp_path, capsys):
        target = tmp_path / "repro" / "flow" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("HALF = 0.5\n")
        main([str(tmp_path), "--no-baseline", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"exact-float-literal": 1}

    def test_strict_fails_on_stale_baseline(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("VALUE = 1\n")
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {"rule": "exact-div", "path": "gone.py", "snippet": "a / b"}
                    ],
                }
            )
        )
        args = [str(target), "--baseline", str(baseline_file)]
        assert main(args) == 0
        assert main(args + ["--strict"]) == 1
        capsys.readouterr()

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        target = tmp_path / "repro" / "flow" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("HALF = 0.5\n")
        baseline_file = tmp_path / "baseline.json"
        assert (
            main([str(tmp_path), "--baseline", str(baseline_file), "--update-baseline"])
            == 0
        )
        assert main([str(tmp_path), "--baseline", str(baseline_file)]) == 0
        capsys.readouterr()

    def test_select_restricts_rules(self, tmp_path, capsys):
        target = tmp_path / "repro" / "flow" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("import os\n\nHALF = 0.5\n")
        assert main([str(tmp_path), "--no-baseline", "--select", "dead-import"]) == 1
        out = capsys.readouterr().out
        assert "dead-import" in out and "exact-float-literal" not in out

    def test_list_rules_covers_every_checker(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "det-set-iter",
            "exact-div",
            "conc-blocking-async",
            "ipc-lambda-dispatch",
            "err-bare-except",
            "dead-import",
        ):
            assert rule in out


# -------------------------------------------------------------- self-checks


class TestSelfCheck:
    def test_parse_error_is_a_finding(self):
        findings = analyze_source("def broken(:\n", NEUTRAL)
        assert rules_of(findings) == {"parse-error"}

    def test_rule_catalogue_ids_are_unique_and_described(self):
        catalogue = rule_catalogue()
        assert len(catalogue) >= 15
        for rule, (checker, description) in catalogue.items():
            assert rule and checker and description

    def test_analysis_package_lints_itself_clean(self):
        findings, scanned = analyze_paths(
            [str(REPO_ROOT / "src" / "repro" / "analysis")]
        )
        assert scanned >= 10
        assert not findings, [finding.render() for finding in findings]

    def test_whole_src_tree_lints_clean(self):
        findings, scanned = analyze_paths([str(REPO_ROOT / "src")])
        assert scanned >= 70
        assert not findings, [finding.render() for finding in findings]
