"""Tests for the result-level cache (ROADMAP: results keyed by language
fingerprint × database content fingerprint).

The cache memoizes whole :class:`~repro.resilience.result.ResilienceResult`
objects per ``(query class, database, semantics, forced method, unsafe)``
tuple.  Results are deterministic functions of that key, so a hit is
indistinguishable from recomputing — except that it costs nothing and, in the
serving layer, never touches the worker pool.
"""

import pytest

from repro.graphdb import generators
from repro.resilience import LanguageCache, resilience, resilience_many
from repro.service import OK, ResilienceServer, resilience_serve


@pytest.fixture
def database():
    return generators.random_labelled_graph(5, 14, "abxy", seed=3)


QUERIES = ["ax*b", "ab|bc", "(ab)*a", "aa", "ab"]


class TestLanguageCacheResultLayer:
    def test_lookup_miss_then_hit(self, database):
        cache = LanguageCache()
        language = cache.language("ax*b")
        assert cache.lookup_result(language, database) is None
        result = resilience(language, database)
        cache.store_result(language, database, result)
        hit = cache.lookup_result(language, database)
        assert hit == result
        assert cache.stats.result_hits == 1
        assert cache.stats.result_misses == 1

    def test_hit_is_relabelled_to_the_querys_own_name(self, database):
        cache = LanguageCache()
        first = cache.language("(ab)*a")
        cache.store_result(first, database, resilience(first, database))
        equivalent = cache.language("a(ba)*")  # same class, different syntax
        hit = cache.lookup_result(equivalent, database)
        assert hit is not None
        assert hit.query == "a(ba)*"
        assert hit.value == resilience("a(ba)*", database).value

    def test_key_distinguishes_semantics_method_and_database(self, database):
        cache = LanguageCache()
        language = cache.language("ab")
        result = resilience(language, database)
        cache.store_result(language, database, result)
        assert cache.lookup_result(language, database, semantics="bag") is None
        assert cache.lookup_result(language, database, method="exact") is None
        other = generators.random_labelled_graph(5, 14, "abxy", seed=9)
        assert cache.lookup_result(language, other) is None
        assert cache.lookup_result(language, database) is not None

    def test_string_keyed_cache_has_no_result_layer(self, database):
        cache = LanguageCache(canonical=False)
        language = cache.language("ab")
        result = resilience(language, database)
        cache.store_result(language, database, result)
        assert cache.lookup_result(language, database) is None
        assert cache.stats.result_hits == 0
        assert cache.stats.result_misses == 0


class TestResilienceManyResultCache:
    def test_duplicates_hit_within_one_batch(self, database):
        cache = LanguageCache()
        results = resilience_many(QUERIES + QUERIES, database, cache=cache)
        assert results[: len(QUERIES)] == results[len(QUERIES) :]
        assert cache.stats.result_hits == len(QUERIES)
        # Cached results replay exactly what a cold computation returns.
        fresh = resilience_many(QUERIES, database)
        assert results[: len(QUERIES)] == fresh

    def test_shared_cache_hits_across_batches(self, database):
        cache = LanguageCache()
        first = resilience_many(QUERIES, database, cache=cache)
        assert cache.stats.result_hits == 0
        second = resilience_many(QUERIES, database, cache=cache)
        assert second == first
        assert cache.stats.result_hits == len(QUERIES)

    def test_equivalent_queries_share_results(self, database):
        cache = LanguageCache()
        first, second = resilience_many(["(ab)*a", "a(ba)*"], database, cache=cache)
        assert cache.stats.result_hits == 1
        assert first.value == second.value
        assert first.query == "(ab)*a" and second.query == "a(ba)*"


class TestServerResultCache:
    def test_second_serve_is_answered_from_the_cache(self, database):
        cache = LanguageCache()
        with ResilienceServer(database, max_workers=2, cache=cache) as server:
            first = server.serve(QUERIES)
            assert cache.stats.result_hits == 0
            second = server.serve(QUERIES)
            assert second == first
        assert cache.stats.result_hits == len(QUERIES)

    def test_full_hit_never_touches_the_pool(self, database):
        cache = LanguageCache()
        with ResilienceServer(database, max_workers=2, cache=cache) as warm:
            first = warm.serve(QUERIES)
        # A brand-new server sharing the session cache: every query hits, so
        # the pool is never even created.
        with ResilienceServer(database, max_workers=2, cache=cache) as server:
            outcomes = server.serve(QUERIES)
            assert outcomes == first
            assert server.worker_pids() == frozenset()

    def test_streaming_hits_match_batch(self, database):
        cache = LanguageCache()
        with ResilienceServer(database, max_workers=2, cache=cache) as server:
            batch = server.serve(QUERIES)
            streamed = sorted(
                server.serve_iter(QUERIES), key=lambda outcome: outcome.index
            )
            assert streamed == batch

    def test_hits_happen_at_planning_time_only(self, database):
        # Within one serve call, a duplicate query never observes the result
        # produced earlier in the same call — that keeps the serial and
        # parallel paths outcome-identical by construction.
        cache = LanguageCache()
        with ResilienceServer(database, max_workers=2, cache=cache) as server:
            outcomes = server.serve(QUERIES + QUERIES)
            assert cache.stats.result_hits == 0
            assert [outcome.status for outcome in outcomes] == [OK] * len(outcomes)

    def test_serial_and_parallel_agree_with_warm_result_cache(self, database):
        serial_cache = LanguageCache()
        parallel_cache = LanguageCache()
        workload = QUERIES + QUERIES
        serial_first = resilience_serve(
            workload, database, parallel=False, cache=serial_cache
        )
        parallel_first = resilience_serve(
            workload, database, max_workers=2, cache=parallel_cache
        )
        assert serial_first == parallel_first
        serial_second = resilience_serve(
            workload, database, parallel=False, cache=serial_cache
        )
        parallel_second = resilience_serve(
            workload, database, max_workers=2, cache=parallel_cache
        )
        assert serial_second == parallel_second == serial_first
        assert serial_cache.stats.result_hits == parallel_cache.stats.result_hits > 0

    def test_budgeted_specs_never_replay_a_cached_result(self, database):
        # Regression: a budgeted spec's observable is whether *its own*
        # execution fits the budget — replaying an earlier unbudgeted "ok"
        # would report success where the uncached serial reference reports
        # "budget-exceeded" (and make the outcome scheduling-dependent under
        # concurrent serving).  Completed budgeted runs still feed the cache.
        from repro.service import QuerySpec

        cache = LanguageCache()
        with ResilienceServer(database, parallel=False, cache=cache) as server:
            [unbudgeted] = server.serve([QuerySpec("aba", method="exact")])
            assert unbudgeted.status == "ok"
            [budgeted] = server.serve([QuerySpec("aba", method="exact", max_nodes=1)])
            reference = resilience_serve(
                [QuerySpec("aba", method="exact", max_nodes=1)],
                database,
                parallel=False,
                cache=LanguageCache(canonical=False),
            )[0]
            assert budgeted.status == reference.status
            assert cache.stats.result_hits == 0
            # A budgeted run that *completed* is identical to an unbounded
            # one, so it feeds the cache for later unbudgeted duplicates.
            generous = LanguageCache()
            with ResilienceServer(database, parallel=False, cache=generous) as inner:
                [first] = inner.serve([QuerySpec("aba", max_nodes=10_000)])
                assert first.status == "ok"
                [replayed] = inner.serve(["aba"])
                assert replayed.status == "ok"
                assert generous.stats.result_hits == 1

    def test_failures_are_never_cached(self, database):
        from repro.service import QuerySpec

        cache = LanguageCache()
        workload = [
            "((",                                 # parse error
            QuerySpec("aa", max_nodes=1),         # exact search, overruns
            QuerySpec("aa", method="local-flow"), # inapplicable forced method
        ]
        with ResilienceServer(database, max_workers=2, cache=cache) as server:
            first = server.serve(workload)
            second = server.serve(workload)
        assert first == second
        assert {outcome.status for outcome in first} == {"error", "budget-exceeded"}
        assert cache.stats.result_hits == 0


class TestHitRateAccounting:
    """The satellite bugfix: non-cacheable completions must not skew the rate.

    ``result_misses`` counts *cacheable* computations only (at completion
    time), error/budget completions land in ``result_uncacheable``, so
    ``hits / (hits + misses)`` is the hit rate over cacheable traffic exactly
    — error-heavy chaos traffic leaves it untouched.
    """

    WORKLOAD_STATUSES = ["ok", "error", "budget-exceeded", "error", "ok"]

    def chaos_workload(self):
        from repro.service import QuerySpec

        return [
            "ax*b",                                # ok, cacheable
            "((",                                  # parse error (planning)
            QuerySpec("aa", max_nodes=1),          # budget-exceeded
            QuerySpec("aa", method="local-flow"),  # inapplicable forced method
            "ab",                                  # ok, cacheable
        ]

    def test_uncacheable_completions_are_counted_separately(self, database):
        cache = LanguageCache()
        with ResilienceServer(database, max_workers=2, cache=cache) as server:
            outcomes = server.serve(self.chaos_workload())
        assert [outcome.status for outcome in outcomes] == self.WORKLOAD_STATUSES
        stats = cache.stats
        # The two ok completions are cacheable misses; the budget overrun and
        # the inapplicable method are executed-but-uncacheable; the parse
        # error never reaches execution and is counted nowhere.
        assert stats.result_misses == 2
        assert stats.result_uncacheable == 2
        assert stats.result_hits == 0

    def test_hit_rate_is_over_cacheable_traffic_only(self, database):
        cache = LanguageCache()
        with ResilienceServer(database, max_workers=2, cache=cache) as server:
            server.serve(self.chaos_workload())
            server.serve(self.chaos_workload())
        stats = cache.stats
        # Second serve: both ok queries hit; the failures fail again.
        assert stats.result_hits == 2
        assert stats.result_misses == 2
        assert stats.result_uncacheable == 4
        rate = stats.result_hits / (stats.result_hits + stats.result_misses)
        assert rate == 0.5  # errors did not drag the cacheable rate down

    def test_lookup_of_a_failing_computation_is_not_a_miss(self, database):
        # Misses count at completion time, so a lookup whose computation then
        # errors contributes nothing to the miss column.
        from repro.service import QuerySpec

        cache = LanguageCache()
        with ResilienceServer(database, parallel=False, cache=cache) as server:
            server.serve([QuerySpec("aa", method="local-flow")])
        assert cache.stats.result_misses == 0
        assert cache.stats.result_uncacheable == 1

    def test_string_keyed_cache_counts_nothing(self, database):
        cache = LanguageCache(canonical=False)
        with ResilienceServer(database, parallel=False, cache=cache) as server:
            server.serve(self.chaos_workload())
        stats = cache.stats
        assert (stats.result_hits, stats.result_misses, stats.result_uncacheable) == (0, 0, 0)
