"""Tests for the Proposition 7.9 reduction (one-dangling languages)."""

import pytest

from repro.exceptions import NotApplicableError
from repro.graphdb import GraphDatabase, generators
from repro.languages import Language
from repro.resilience import (
    resilience_exact,
    resilience_one_dangling,
    verify_contingency_set,
)


class TestCorrectness:
    @pytest.mark.parametrize("expression", ["abc|be", "abcd|be", "abcd|ce"])
    def test_agrees_with_exact_on_random_set_databases(self, expression):
        language = Language.from_regex(expression)
        alphabet = "".join(sorted(language.alphabet))
        for seed in range(5):
            database = generators.random_labelled_graph(5, 12, alphabet, seed=seed)
            dangling_result = resilience_one_dangling(language, database)
            exact_result = resilience_exact(language, database)
            assert dangling_result.value == exact_result.value, (expression, seed)
            assert verify_contingency_set(language, database, dangling_result), (expression, seed)

    def test_infinite_one_dangling_language(self):
        # ax*b|xd (newly classified tractable in the journal version).
        language = Language.from_regex("ax*b|xd")
        for seed in range(5):
            database = generators.random_labelled_graph(5, 12, "axbd", seed=seed)
            dangling_result = resilience_one_dangling(language, database)
            exact_result = resilience_exact(language, database)
            assert dangling_result.value == exact_result.value, seed
            assert verify_contingency_set(language, database, dangling_result), seed

    def test_mirrored_case_x_fresh(self):
        # eb|abc: the dangling word is eb with e fresh as the *first* letter, so
        # the algorithm mirrors the instance (Proposition 6.3).
        language = Language.from_words(["abc", "eb"])
        for seed in range(5):
            database = generators.random_labelled_graph(5, 12, "abce", seed=seed)
            dangling_result = resilience_one_dangling(language, database)
            exact_result = resilience_exact(language, database)
            assert dangling_result.value == exact_result.value, seed
            assert verify_contingency_set(language, database, dangling_result), seed

    def test_agrees_with_exact_on_bag_databases(self):
        language = Language.from_regex("abc|be")
        for seed in range(5):
            bag = generators.random_bag_database(5, 12, "abce", seed=seed, max_multiplicity=5)
            dangling_result = resilience_one_dangling(language, bag)
            exact_result = resilience_exact(language, bag)
            assert dangling_result.value == exact_result.value, seed

    def test_rejects_non_one_dangling(self):
        database = GraphDatabase.from_edges([("u", "a", "v")])
        with pytest.raises(NotApplicableError):
            resilience_one_dangling(Language.from_regex("aa"), database)

    def test_kappa_accounting(self):
        # A single xy walk: resilience 1, removing either fact.
        language = Language.from_regex("abc|be")
        database = GraphDatabase.from_edges([("u", "b", "v"), ("v", "e", "w")])
        result = resilience_one_dangling(language, database)
        assert result.value == 1
        assert verify_contingency_set(language, database, result)

    def test_dangling_word_only_database(self):
        # Many be-walks through a single b-fact.
        language = Language.from_regex("abc|be")
        database = GraphDatabase.from_edges(
            [("u", "b", "v"), ("v", "e", "w1"), ("v", "e", "w2"), ("v", "e", "w3")]
        )
        result = resilience_one_dangling(language, database)
        assert result.value == 1

    def test_query_false_gives_zero(self):
        language = Language.from_regex("abc|be")
        database = GraphDatabase.from_edges([("u", "a", "v"), ("w", "e", "z")])
        result = resilience_one_dangling(language, database)
        assert result.value == 0
