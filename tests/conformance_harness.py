"""Reusable differential conformance harness for the serving runtime.

The conformance claim: caches, pools, streaming and the async front-end are
*execution strategies* — the uncached serial path is the semantics, and every
variant must reproduce its outcomes exactly (after re-sorting streamed
outcomes by ``index``).  This module makes that claim a first-class, reusable
subsystem instead of one test file's private plumbing:

* :data:`MATRIX_QUERIES` — the fixed query matrix covering every dispatch
  method, duplicate and equivalent-but-unequal pairs, and every failure mode;
* :func:`make_cache` / :data:`CACHE_VARIANTS` — the cache configurations;
* :func:`reference_outcomes` — the uncached serial reference for a database;
* :data:`EXECUTION_VARIANTS` and :func:`variant_session` — the registry of
  execution strategies.  A session is opened once per (variant, cache) pair
  and runs the matrix ``PASSES`` times with shared state (cache, warm pool,
  async admission queue), so the second pass exercises exactly the warm paths
  the variants exist for;
* :func:`assert_outcomes_identical` — the comparator, with a per-index diff
  on mismatch.

Registering a new execution mode (how PR 3's streaming, PR 5's async and this
PR's distributed variants were added) means one entry in
``EXECUTION_VARIANTS`` plus one branch in :class:`VariantSession`; the
parametrized conformance test picks it up for every cache variant
automatically.  The ``distributed-*`` variants run the async front-end over a
fingerprint-routed :class:`~repro.service.ThreadExchange` fleet — the
``node-kill`` one kills the owning node two outcomes into the stream, so the
identity assertion doubles as a no-loss/no-duplication failover proof.  The
``distributed-2-http-nodes`` variant runs the same front-end over an
:class:`~repro.service.HttpExchange` — real sockets, pickled payloads and
ndjson streaming in the conformance loop, pinning the wire transport to the
serial semantics.  The ``soak-replay`` variant drives the matrix through the
chaos soak harness
(:class:`~repro.traffic.SoakRunner`, mid-round node kill included): the
outcome set of a seeded chaos run must equal the uncached serial reference.
"""

from __future__ import annotations

import asyncio

from faults import adrain_with_kill
from repro.graphdb import generators
from repro.service import (
    AnalysisStore,
    AsyncResilienceServer,
    HttpExchange,
    LanguageCache,
    QueryOutcome,
    QuerySpec,
    ResilienceServer,
    ThreadExchange,
    Workload,
    resilience_serve,
)
from repro.traffic import (
    ChaosEvent,
    ChaosSchedule,
    SoakRunner,
    TrafficRequest,
    TrafficTrace,
)

#: The fixed query matrix: every dispatch method, duplicate queries,
#: equivalent-but-unequal pairs, and every failure mode.
MATRIX_QUERIES = (
    "ax*b",                                  # local-flow
    "ab|bc",                                 # bcl-flow
    "(ab)*a",                                # infinite; equivalent pair with the next
    "a(ba)*",                                # ... same minimal DFA, different syntax
    "ab|ba",                                 # exact; equivalent pair with the next
    "ba|ab",
    "aa",                                    # exact, duplicated below
    "aa",
    "ε|a",                                   # trivial-epsilon
    "((",                                    # parse error -> "error" outcome
    QuerySpec("aa", method="local-flow"),    # inapplicable forced method -> "error"
    "aba",                                   # unbudgeted duplicate of the next:
    QuerySpec("aba", max_nodes=1),           # ... its cached "ok" must never be
                                             # replayed for the budgeted spec
    QuerySpec("ab", semantics="set"),        # forced semantics
)

CACHE_VARIANTS = ("uncached", "string-cache", "canonical-cache", "disk-cache")
EXECUTION_VARIANTS = (
    "serial",
    "warm-pool",
    "streaming",
    "async-single-workload",
    "async-3-concurrent-workloads-merged",
    "distributed-2-nodes",
    "distributed-4-nodes",
    "distributed-2-nodes-node-kill",
    "distributed-2-http-nodes",
    "soak-replay",
)
PASSES = 2

#: How many copies of the matrix the merged async variant submits concurrently.
CONCURRENT_WORKLOADS = 3


def databases():
    return {
        "set": generators.random_labelled_graph(5, 14, "abxy", seed=3),
        "bag": generators.random_labelled_graph(4, 10, "abx", seed=5).to_bag(2),
    }


def make_cache(kind: str, store_directory) -> LanguageCache | None:
    """Build the shared cache of a variant run (``None``: fresh per pass)."""
    if kind == "uncached":
        return None
    if kind == "string-cache":
        return LanguageCache(canonical=False)
    if kind == "canonical-cache":
        return LanguageCache()
    if kind == "disk-cache":
        return LanguageCache(store=AnalysisStore(store_directory))
    raise AssertionError(kind)


def fresh_reference_cache() -> LanguageCache:
    """The reference configuration's cache: string-keyed, session-fresh."""
    return LanguageCache(canonical=False)


def reference_outcomes(database) -> list[QueryOutcome]:
    """The uncached serial reference: fresh string-keyed cache, no pool."""
    workload = Workload.coerce(MATRIX_QUERIES)
    return resilience_serve(
        workload, database, parallel=False, cache=fresh_reference_cache()
    )


def assert_outcomes_identical(
    actual: list[QueryOutcome], reference: list[QueryOutcome], label: str = ""
) -> None:
    """Assert outcome-identity, reporting the first diverging index."""
    prefix = f"{label}: " if label else ""
    assert len(actual) == len(reference), (
        f"{prefix}{len(actual)} outcomes, reference has {len(reference)}"
    )
    for ours, theirs in zip(actual, reference):
        assert ours == theirs, f"{prefix}diverged at #{theirs.index}: {ours!r} != {theirs!r}"


def _sorted(outcomes) -> list[QueryOutcome]:
    return sorted(outcomes, key=lambda outcome: outcome.index)


class VariantSession:
    """One execution variant bound to one database and cache configuration.

    :meth:`run_pass` serves the matrix once and returns one re-sorted outcome
    list *per workload served that pass* (most variants serve one; the merged
    async variant serves :data:`CONCURRENT_WORKLOADS`).  ``shares_pool`` says
    whether worker PIDs are expected to stay stable across passes (only
    meaningful with a shared cache, where the server itself persists).
    """

    def __init__(self, execution: str, database, shared_cache: LanguageCache | None):
        if execution not in EXECUTION_VARIANTS:
            raise AssertionError(f"unregistered execution variant: {execution}")
        self.execution = execution
        self.database = database
        self.shared_cache = shared_cache
        self.workload = Workload.coerce(MATRIX_QUERIES)
        # The kill variant destroys a node (and its pool) every pass, so warm
        # pids cannot be stable across passes; it still shares the cache.  The
        # soak-replay variant likewise builds (and kills into) a fresh fleet
        # per pass through the SoakRunner.
        self.kill_mid_pass = execution.endswith("node-kill")
        self.soak = execution == "soak-replay"
        # HTTP nodes ship their databases over the wire and hold their own
        # caches, so the cell's shared cache cannot apply and worker pids
        # belong to per-pass fleets: rebuild fresh every pass, like the kill
        # and soak variants.
        self.http = "http" in execution
        self.shares_pool = (
            execution != "serial"
            and shared_cache is not None
            and not self.kill_mid_pass
            and not self.soak
            and not self.http
        )
        self._server: ResilienceServer | None = None
        self._async_server: AsyncResilienceServer | None = None
        self._exchange: ThreadExchange | None = None
        if self.shares_pool:
            self._open_servers(shared_cache)

    # ------------------------------------------------------------------ lifecycle

    def _node_count(self) -> int:
        return int(self.execution.split("-")[1])

    def _open_servers(self, cache: LanguageCache | None) -> None:
        if self.execution in ("warm-pool", "streaming"):
            self._server = ResilienceServer(self.database, max_workers=2, cache=cache)
        elif self.execution.startswith("async"):
            self._async_server = AsyncResilienceServer(
                ResilienceServer(self.database, max_workers=2, cache=cache)
            )
        elif self.execution.startswith("distributed"):
            # A fingerprint-routed fleet behind the same async front-end —
            # in-process nodes sharing the variant's cache, or real HTTP
            # nodes (own caches) when the variant says so.
            if self.http:
                self._exchange = HttpExchange(
                    nodes=self._node_count(), max_workers=2
                )
            else:
                self._exchange = ThreadExchange(
                    nodes=self._node_count(), max_workers=2, cache=cache
                )
            self._async_server = AsyncResilienceServer(
                self._exchange, database=self.database
            )

    def _close_servers(self) -> None:
        if self._server is not None:
            self._server.close()
            self._server = None
        if self._async_server is not None:
            self._async_server.close()  # owns (and closes) any exchange
            self._async_server = None
        self._exchange = None

    def close(self) -> None:
        self._close_servers()

    def __enter__(self) -> "VariantSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def worker_pids(self) -> frozenset[int]:
        if self._server is not None:
            return self._server.worker_pids()
        if self._async_server is not None:
            return self._async_server.worker_pids()
        return frozenset()

    # ------------------------------------------------------------------ one pass

    def run_pass(self) -> list[list[QueryOutcome]]:
        if self.soak:
            return self._run_soak_pass()
        if not self.shares_pool and self.execution != "serial":
            # The uncached configuration proves the *execution strategy alone*
            # never changes results: fresh cache, fresh server, every pass.
            # (The kill variant also lands here with a shared cache — its
            # fleet is rebuilt per pass, but the cache persists across them.)
            self._open_servers(
                self.shared_cache if self.shared_cache is not None
                else fresh_reference_cache()
            )
            try:
                return self._run_pass_on_open_servers(cache=None)
            finally:
                self._close_servers()
        cache = (
            self.shared_cache if self.shared_cache is not None else fresh_reference_cache()
        )
        return self._run_pass_on_open_servers(cache=cache)

    def _run_pass_on_open_servers(self, cache: LanguageCache | None) -> list[list[QueryOutcome]]:
        if self.execution == "serial":
            return [
                resilience_serve(
                    self.workload, self.database, parallel=False, cache=cache
                )
            ]
        if self.execution == "warm-pool":
            return [self._server.serve(self.workload)]
        if self.execution == "streaming":
            return [_sorted(self._server.serve_iter(self.workload))]
        if self.execution == "async-single-workload":
            return asyncio.run(self._submit_and_collect(1))
        if self.execution == "async-3-concurrent-workloads-merged":
            return asyncio.run(self._submit_and_collect(CONCURRENT_WORKLOADS))
        if self.kill_mid_pass:
            return asyncio.run(self._submit_and_collect_with_kill())
        if self.execution.startswith("distributed"):
            return asyncio.run(self._submit_and_collect(CONCURRENT_WORKLOADS))
        raise AssertionError(self.execution)

    async def _submit_and_collect(self, count: int) -> list[list[QueryOutcome]]:
        """Submit ``count`` copies of the matrix concurrently, gather them all.

        All submissions land in the admission queue before any is awaited, so
        the drain merges concurrent workloads onto the one warm pool; each
        workload's outcomes come back on its own iterator and are re-sorted
        independently.
        """

        async def collect(iterator) -> list[QueryOutcome]:
            return _sorted([outcome async for outcome in iterator])

        iterators = [
            await self._async_server.submit(self.workload) for _ in range(count)
        ]
        return list(await asyncio.gather(*(collect(iterator) for iterator in iterators)))

    async def _submit_and_collect_with_kill(self) -> list[list[QueryOutcome]]:
        """Serve the matrix, killing the owning node after two outcomes land.

        The router re-routes the unserved tail to a surviving (or launcher-
        replaced) node; the conformance assertion then proves the failover
        lost nothing, duplicated nothing, and changed no outcome.
        """
        iterator = await self._async_server.submit(self.workload)

        def kill() -> None:
            self._exchange.manager.kill(self._exchange.route_for(self.database))

        outcomes = await adrain_with_kill(iterator, kill, after=2)
        return [_sorted(outcomes)]

    def _run_soak_pass(self) -> list[list[QueryOutcome]]:
        """Chaos soak as a conformance cell: the outcome set of a seeded soak
        round (mid-stream node kill included) must equal the serial reference.

        Two copies of the matrix travel as one soak round over a fresh
        2-node fleet (sharing this cell's cache across passes); the chaos
        schedule kills the owning node two outcomes in, and the SoakRunner's
        own invariant monitor runs alongside the identity assertion.
        """
        requests = tuple(
            TrafficRequest(
                seq=seq,
                offset=0.0,
                priority=0,
                weight=1.0,
                deadline=None,
                database_key="db",
                workload=self.workload,
            )
            for seq in range(2)
        )
        trace = TrafficTrace(requests=requests, databases={"db": self.database})
        runner = SoakRunner(
            trace,
            nodes=2,
            max_workers=2,
            cache=self.shared_cache
            if self.shared_cache is not None
            else fresh_reference_cache(),
            chaos=ChaosSchedule(
                (ChaosEvent(round=0, kind="kill", after_outcomes=2),)
            ),
            requests_per_round=2,
            verify_parity=False,
            keep_outcomes=True,
        )
        runner.run()
        return [_sorted(outcomes) for outcomes in runner.collected]


def variant_session(
    execution: str, database, cache_kind: str, store_directory
) -> VariantSession:
    """Open a session for one (execution, cache) conformance cell."""
    return VariantSession(execution, database, make_cache(cache_kind, store_directory))
