"""Tests for one-dangling languages (Definition 7.8)."""

import pytest

from repro.languages import Language, dangling


class TestDecomposition:
    @pytest.mark.parametrize(
        "expression, word",
        [
            ("abc|be", "be"),
            ("abcd|be", "be"),
            ("abcd|ce", "ce"),
            ("ax*b|xd", "xd"),
        ],
    )
    def test_one_dangling_examples(self, expression, word):
        decomposition = dangling.one_dangling_decomposition(Language.from_regex(expression))
        assert decomposition is not None, expression
        assert decomposition.dangling_word == word
        assert decomposition.fresh_letters
        assert decomposition.local_part.is_local()

    @pytest.mark.parametrize("expression", ["aa", "axb|cxd", "abc|bcd", "abcd|be|ef", "ab|bc|ca", "abc|bef"])
    def test_not_one_dangling(self, expression):
        assert dangling.one_dangling_decomposition(Language.from_regex(expression)) is None, expression

    def test_local_languages_alone_are_not_required(self):
        # A local language with an extra fresh two-letter word is one-dangling.
        language = Language.from_words(["abc", "xz"])
        decomposition = dangling.one_dangling_decomposition(language)
        assert decomposition is not None
        assert decomposition.dangling_word == "xz"
        assert decomposition.fresh_letters == frozenset("xz")

    def test_fresh_letter_requirement(self):
        # ab|ba: removing either two-letter word leaves a local language, but
        # both letters of the removed word still occur in the rest, so neither
        # decomposition satisfies the freshness condition of Definition 7.8.
        assert not dangling.is_one_dangling(Language.from_regex("ab|ba"))

    def test_bcl_can_also_be_one_dangling(self):
        # ab|bc is classified as a BCL in Figure 1, but it also satisfies
        # Definition 7.8 (L = {bc} is local and 'a' is fresh); both routes are
        # tractable and consistent.
        assert dangling.is_one_dangling(Language.from_regex("ab|bc"))

    def test_local_part_of_infinite_language(self):
        decomposition = dangling.one_dangling_decomposition(Language.from_regex("ax*b|xd"))
        assert decomposition is not None
        assert decomposition.local_part.equivalent_to(Language.from_regex("ax*b"))
        assert decomposition.local_alphabet == frozenset("axb")

    def test_is_one_dangling_predicate(self):
        assert dangling.is_one_dangling(Language.from_regex("abc|be"))
        assert not dangling.is_one_dangling(Language.from_regex("aa"))
