"""Differential conformance suite for the serving runtime.

One fixed query × database matrix runs through every cache variant
{uncached, string-cache, canonical-cache, disk-cache} crossed with every
registered execution variant {serial, warm-pool, streaming,
async-single-workload, async-3-concurrent-workloads-merged,
distributed-2-nodes, distributed-4-nodes, distributed-2-nodes-node-kill},
and every combination must produce outcomes *identical* to the uncached
serial reference — values, contingency sets, methods, statuses, node counts,
everything.  Caches, pools, the async front-end and the routed node fleet
(including mid-stream node death and failover) are execution strategies; the
serial uncached path is the semantics.

The matrix, variant registry, comparator and per-variant session plumbing
live in :mod:`conformance_harness` so new execution modes register once and
are pinned everywhere.  Each session runs the workload twice back to back
with shared state (cache, warm pool, async admission queue), so the second
pass exercises exactly the warm paths the variants exist for.  The matrix
deliberately contains equivalent-but-unequal query pairs (``(ab)*a`` /
``a(ba)*`` and ``ab|ba`` / ``ba|ab``), a parse error, an inapplicable forced
method, and a node-budget overrun, so the parity claim covers the error
paths too.

The disk-store variant writes to a per-test temporary directory unless
``REPRO_ANALYSIS_STORE`` points somewhere (tools/ci.sh sets it and runs the
suite twice, cold then warm, against one directory to cover the
cross-process path).
"""

import os
from pathlib import Path

import pytest

from conformance_harness import (
    CACHE_VARIANTS,
    EXECUTION_VARIANTS,
    MATRIX_QUERIES,
    PASSES,
    assert_outcomes_identical,
    databases,
    reference_outcomes,
    variant_session,
)
from repro.graphdb import generators
from repro.service import (
    AnalysisStore,
    LanguageCache,
    ResilienceServer,
    Workload,
    resilience_serve,
)


@pytest.fixture(scope="module", params=["set", "bag"])
def database(request):
    return databases()[request.param]


@pytest.fixture(scope="module")
def reference(database):
    """The uncached serial reference: fresh string-keyed cache, no pool."""
    return reference_outcomes(database)


@pytest.fixture
def store_directory(tmp_path):
    env = os.environ.get("REPRO_ANALYSIS_STORE")
    return Path(env) if env else tmp_path / "analysis-store"


@pytest.mark.parametrize("execution", EXECUTION_VARIANTS)
@pytest.mark.parametrize("cache_kind", CACHE_VARIANTS)
def test_variant_is_outcome_identical_to_uncached_serial(
    cache_kind, execution, database, reference, store_directory
):
    with variant_session(execution, database, cache_kind, store_directory) as session:
        pids = None
        for pass_number in range(PASSES):
            for outcomes in session.run_pass():
                assert_outcomes_identical(
                    outcomes, reference, f"{execution}/{cache_kind} pass {pass_number}"
                )
            if session.shares_pool:
                if pids:
                    assert session.worker_pids() == pids, (
                        "pool must stay warm across passes"
                    )
                pids = session.worker_pids()


def test_disk_store_cold_then_warm_pass_hits(database, store_directory, tmp_path):
    """A second process-like pass over the same store directory must *hit*.

    Two independent ``AnalysisStore`` instances (as two processes would build)
    share one directory: the cold pass writes every analysis, the warm pass
    reads them all back — zero classifications — and the outcomes agree
    exactly.
    """
    directory = store_directory if os.environ.get("REPRO_ANALYSIS_STORE") else tmp_path / "s"
    workload = Workload.coerce(MATRIX_QUERIES)

    cold_store = AnalysisStore(directory)
    cold = resilience_serve(
        workload, database, parallel=False, cache=LanguageCache(store=cold_store)
    )
    assert cold_store.stats().writes + cold_store.stats().hits > 0

    warm_store = AnalysisStore(directory)
    warm_cache = LanguageCache(store=warm_store)
    warm = resilience_serve(workload, database, parallel=False, cache=warm_cache)
    assert warm == cold
    assert warm_store.stats().hits > 0
    assert warm_store.stats().writes == 0
    assert warm_cache.stats.classifications == 0


def test_reference_flow_solver_is_outcome_identical(database, monkeypatch):
    """The min-cut solver is an execution strategy, never a semantic.

    The whole matrix runs once with the array-native solver and once with the
    retained object-layer reference solver (``REPRO_FLOW_SOLVER=reference``);
    the outcome streams must be byte-identical — same values, same contingency
    sets, same details — because both solvers run on the identical compiled
    network and exact max flows have canonical cuts.
    """
    workload = Workload.coerce(MATRIX_QUERIES)
    monkeypatch.delenv("REPRO_FLOW_SOLVER", raising=False)
    fast = resilience_serve(
        workload, database, parallel=False, cache=LanguageCache(canonical=False)
    )
    monkeypatch.setenv("REPRO_FLOW_SOLVER", "reference")
    reference = resilience_serve(
        workload, database, parallel=False, cache=LanguageCache(canonical=False)
    )
    assert fast == reference
    assert [repr(outcome) for outcome in fast] == [repr(outcome) for outcome in reference]


def test_reference_flow_solver_matches_through_the_warm_pool(database, monkeypatch):
    """Same claim through the process pool: workers inherit the solver
    selection from the parent's environment at fork time."""
    workload = Workload.coerce(MATRIX_QUERIES)
    monkeypatch.delenv("REPRO_FLOW_SOLVER", raising=False)
    fast = resilience_serve(
        workload, database, parallel=False, cache=LanguageCache(canonical=False)
    )
    monkeypatch.setenv("REPRO_FLOW_SOLVER", "reference")
    with ResilienceServer(
        database, max_workers=2, cache=LanguageCache(canonical=False)
    ) as server:
        pooled = server.serve(workload)
    assert pooled == fast


def test_equivalent_queries_classify_once_with_identical_results(database):
    """The acceptance observable: one classification per equivalence class."""
    from dataclasses import replace

    cache = LanguageCache()
    outcomes = resilience_serve(
        ["(ab)*a", "a(ba)*", "ab|ba", "ba|ab"], database, parallel=False, cache=cache
    )
    assert cache.stats.classifications == 2
    assert cache.stats.canonical_hits == 2
    assert cache.stats.canonical_misses == 2
    first, second, third, fourth = (outcome.result for outcome in outcomes)
    assert replace(first, query="") == replace(second, query="")
    assert replace(third, query="") == replace(fourth, query="")
    assert first.query == "(ab)*a" and second.query == "a(ba)*"
