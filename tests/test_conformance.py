"""Differential conformance suite for the serving runtime.

One fixed query × database matrix runs through every cache variant
{uncached, string-cache, canonical-cache, disk-cache} crossed with every
execution variant {serial, warm-pool, streaming}, and every combination must
produce outcomes *identical* to the uncached serial reference — values,
contingency sets, methods, statuses, node counts, everything.  Caches and
pools are execution strategies; the serial uncached path is the semantics.

Each variant runs the workload twice back to back with shared state (cache,
warm pool, disk store), so the second pass exercises exactly the warm paths
the variants exist for.  The matrix deliberately contains equivalent-but-
unequal query pairs (``(ab)*a`` / ``a(ba)*`` and ``ab|ba`` / ``ba|ab``), a
parse error, an inapplicable forced method, and a node-budget overrun, so the
parity claim covers the error paths too.

The disk-store variant writes to a per-test temporary directory unless
``REPRO_ANALYSIS_STORE`` points somewhere (tools/ci.sh sets it and runs the
suite twice, cold then warm, against one directory to cover the
cross-process path).
"""

import os
from pathlib import Path

import pytest

from repro.graphdb import generators
from repro.service import (
    AnalysisStore,
    LanguageCache,
    QuerySpec,
    ResilienceServer,
    Workload,
    resilience_serve,
)

#: The fixed query matrix: every dispatch method, duplicate queries,
#: equivalent-but-unequal pairs, and every failure mode.
MATRIX_QUERIES = (
    "ax*b",                                  # local-flow
    "ab|bc",                                 # bcl-flow
    "(ab)*a",                                # infinite; equivalent pair with the next
    "a(ba)*",                                # ... same minimal DFA, different syntax
    "ab|ba",                                 # exact; equivalent pair with the next
    "ba|ab",
    "aa",                                    # exact, duplicated below
    "aa",
    "ε|a",                                   # trivial-epsilon
    "((",                                    # parse error -> "error" outcome
    QuerySpec("aa", method="local-flow"),    # inapplicable forced method -> "error"
    QuerySpec("aba", max_nodes=1),           # node budget -> "budget-exceeded"
    QuerySpec("ab", semantics="set"),        # forced semantics
)

CACHE_VARIANTS = ("uncached", "string-cache", "canonical-cache", "disk-cache")
EXECUTION_VARIANTS = ("serial", "warm-pool", "streaming")
PASSES = 2


def databases():
    return {
        "set": generators.random_labelled_graph(5, 14, "abxy", seed=3),
        "bag": generators.random_labelled_graph(4, 10, "abx", seed=5).to_bag(2),
    }


@pytest.fixture(scope="module", params=["set", "bag"])
def database(request):
    return databases()[request.param]


@pytest.fixture(scope="module")
def reference(database):
    """The uncached serial reference: fresh string-keyed cache, no pool."""
    workload = Workload.coerce(MATRIX_QUERIES)
    return resilience_serve(
        workload, database, parallel=False, cache=LanguageCache(canonical=False)
    )


@pytest.fixture
def store_directory(tmp_path):
    env = os.environ.get("REPRO_ANALYSIS_STORE")
    return Path(env) if env else tmp_path / "analysis-store"


def make_cache(kind, store_directory):
    if kind == "uncached":
        return None  # a fresh default is built per pass below
    if kind == "string-cache":
        return LanguageCache(canonical=False)
    if kind == "canonical-cache":
        return LanguageCache()
    if kind == "disk-cache":
        return LanguageCache(store=AnalysisStore(store_directory))
    raise AssertionError(kind)


@pytest.mark.parametrize("execution", EXECUTION_VARIANTS)
@pytest.mark.parametrize("cache_kind", CACHE_VARIANTS)
def test_variant_is_outcome_identical_to_uncached_serial(
    cache_kind, execution, database, reference, store_directory
):
    workload = Workload.coerce(MATRIX_QUERIES)
    shared_cache = make_cache(cache_kind, store_directory)

    def run_pass(server):
        cache = (
            shared_cache
            if shared_cache is not None
            else LanguageCache(canonical=False)
        )
        if execution == "serial":
            return resilience_serve(workload, database, parallel=False, cache=cache)
        if execution == "warm-pool":
            return server.serve(workload)
        streamed = list(server.serve_iter(workload))
        return sorted(streamed, key=lambda outcome: outcome.index)

    if execution == "serial":
        for _ in range(PASSES):
            assert run_pass(None) == reference
        return

    # Pool variants share one warm server across passes; the uncached variant
    # still gets a fresh *cache* per pass (cache=... below), proving the warm
    # pool alone never changes results either.
    with ResilienceServer(database, max_workers=2, cache=shared_cache) as server:
        if shared_cache is None:
            for _ in range(PASSES):
                inner = ResilienceServer(
                    database, max_workers=2, cache=LanguageCache(canonical=False)
                )
                with inner:
                    if execution == "warm-pool":
                        assert inner.serve(workload) == reference
                    else:
                        streamed = sorted(
                            inner.serve_iter(workload), key=lambda outcome: outcome.index
                        )
                        assert streamed == reference
            return
        pids = None
        for _ in range(PASSES):
            assert run_pass(server) == reference
            if pids is not None:
                assert server.worker_pids() == pids, "pool must stay warm across passes"
            pids = server.worker_pids()


def test_disk_store_cold_then_warm_pass_hits(database, store_directory, tmp_path):
    """A second process-like pass over the same store directory must *hit*.

    Two independent ``AnalysisStore`` instances (as two processes would build)
    share one directory: the cold pass writes every analysis, the warm pass
    reads them all back — zero classifications — and the outcomes agree
    exactly.
    """
    directory = store_directory if os.environ.get("REPRO_ANALYSIS_STORE") else tmp_path / "s"
    workload = Workload.coerce(MATRIX_QUERIES)

    cold_store = AnalysisStore(directory)
    cold = resilience_serve(
        workload, database, parallel=False, cache=LanguageCache(store=cold_store)
    )
    assert cold_store.stats().writes + cold_store.stats().hits > 0

    warm_store = AnalysisStore(directory)
    warm_cache = LanguageCache(store=warm_store)
    warm = resilience_serve(workload, database, parallel=False, cache=warm_cache)
    assert warm == cold
    assert warm_store.stats().hits > 0
    assert warm_store.stats().writes == 0
    assert warm_cache.stats.classifications == 0


def test_reference_flow_solver_is_outcome_identical(database, monkeypatch):
    """The min-cut solver is an execution strategy, never a semantic.

    The whole matrix runs once with the array-native solver and once with the
    retained object-layer reference solver (``REPRO_FLOW_SOLVER=reference``);
    the outcome streams must be byte-identical — same values, same contingency
    sets, same details — because both solvers run on the identical compiled
    network and exact max flows have canonical cuts.
    """
    workload = Workload.coerce(MATRIX_QUERIES)
    monkeypatch.delenv("REPRO_FLOW_SOLVER", raising=False)
    fast = resilience_serve(
        workload, database, parallel=False, cache=LanguageCache(canonical=False)
    )
    monkeypatch.setenv("REPRO_FLOW_SOLVER", "reference")
    reference = resilience_serve(
        workload, database, parallel=False, cache=LanguageCache(canonical=False)
    )
    assert fast == reference
    assert [repr(outcome) for outcome in fast] == [repr(outcome) for outcome in reference]


def test_reference_flow_solver_matches_through_the_warm_pool(database, monkeypatch):
    """Same claim through the process pool: workers inherit the solver
    selection from the parent's environment at fork time."""
    workload = Workload.coerce(MATRIX_QUERIES)
    monkeypatch.delenv("REPRO_FLOW_SOLVER", raising=False)
    fast = resilience_serve(
        workload, database, parallel=False, cache=LanguageCache(canonical=False)
    )
    monkeypatch.setenv("REPRO_FLOW_SOLVER", "reference")
    with ResilienceServer(
        database, max_workers=2, cache=LanguageCache(canonical=False)
    ) as server:
        pooled = server.serve(workload)
    assert pooled == fast


def test_equivalent_queries_classify_once_with_identical_results(database):
    """The acceptance observable: one classification per equivalence class."""
    from dataclasses import replace

    cache = LanguageCache()
    outcomes = resilience_serve(
        ["(ab)*a", "a(ba)*", "ab|ba", "ba|ab"], database, parallel=False, cache=cache
    )
    assert cache.stats.classifications == 2
    assert cache.stats.canonical_hits == 2
    assert cache.stats.canonical_misses == 2
    first, second, third, fourth = (outcome.result for outcome in outcomes)
    assert replace(first, query="") == replace(second, query="")
    assert replace(third, query="") == replace(fourth, query="")
    assert first.query == "(ab)*a" and second.query == "a(ba)*"
