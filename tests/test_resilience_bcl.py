"""Tests for the Proposition 7.6 reduction (bipartite chain languages)."""

import pytest

from repro.exceptions import NotApplicableError
from repro.graphdb import GraphDatabase, generators
from repro.languages import Language
from repro.resilience import resilience_bcl, resilience_exact, verify_contingency_set


class TestCorrectness:
    @pytest.mark.parametrize("expression", ["ab|bc", "axb|byc", "axyb|bztc|cd|dea"])
    def test_agrees_with_exact_on_random_set_databases(self, expression):
        language = Language.from_regex(expression)
        alphabet = "".join(sorted(language.alphabet))
        for seed in range(5):
            database = generators.random_labelled_graph(5, 10, alphabet, seed=seed)
            bcl_result = resilience_bcl(language, database)
            exact_result = resilience_exact(language, database)
            assert bcl_result.value == exact_result.value, (expression, seed)
            assert verify_contingency_set(language, database, bcl_result), (expression, seed)

    def test_agrees_with_exact_on_bag_databases(self):
        language = Language.from_regex("ab|bc")
        for seed in range(5):
            bag = generators.random_bag_database(5, 12, "abc", seed=seed, max_multiplicity=5)
            bcl_result = resilience_bcl(language, bag)
            exact_result = resilience_exact(language, bag)
            assert bcl_result.value == exact_result.value, seed

    def test_rejects_non_bcl(self):
        database = GraphDatabase.from_edges([("u", "a", "v")])
        with pytest.raises(NotApplicableError):
            resilience_bcl(Language.from_regex("ab|bc|ca"), database)
        with pytest.raises(NotApplicableError):
            resilience_bcl(Language.from_regex("aa"), database)

    def test_one_letter_words_force_removals(self):
        # Words of length one force removing every fact with that label.
        language = Language.from_words(["ab", "c"])
        database = GraphDatabase.from_edges(
            [("u", "c", "v"), ("w", "c", "z"), ("u", "a", "x")]
        )
        result = resilience_bcl(language, database)
        assert result.value == 2
        assert verify_contingency_set(Language.from_words(["ab", "c"]), database, result)

    def test_query_false_gives_zero(self):
        database = GraphDatabase.from_edges([("u", "a", "v"), ("w", "c", "z")])
        result = resilience_bcl(Language.from_regex("ab|bc"), database)
        assert result.value == 0

    def test_word_walk_chain(self):
        # A chain a->b->c creates one ab-walk and one bc-walk sharing the b-fact.
        database = GraphDatabase.from_edges(
            [("1", "a", "2"), ("2", "b", "3"), ("3", "c", "4")]
        )
        result = resilience_bcl(Language.from_regex("ab|bc"), database)
        assert result.value == 1
        assert verify_contingency_set("ab|bc", database, result)

    def test_reversed_word_orientation(self):
        # axb|byc with shared b: witnesses overlap only on b-facts.
        database = GraphDatabase.from_edges(
            [
                ("1", "a", "2"),
                ("2", "x", "3"),
                ("3", "b", "4"),
                ("4", "y", "5"),
                ("5", "c", "6"),
            ]
        )
        result = resilience_bcl(Language.from_regex("axb|byc"), database)
        exact = resilience_exact(Language.from_regex("axb|byc"), database)
        assert result.value == exact.value == 1
