"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graphdb import Fact, GraphDatabase
from repro.languages import Language
from repro.languages.infix import infix_free_words
from repro.languages.words import has_repeated_letter, mirror
from repro.resilience import resilience, resilience_exact, verify_contingency_set
from repro.rpq import RPQ

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

letters = st.sampled_from("ab")
small_words = st.text(alphabet="abc", min_size=1, max_size=4)
word_sets = st.sets(small_words, min_size=1, max_size=4)


def databases(alphabet="ab", max_nodes=4, max_edges=8):
    nodes = st.integers(min_value=0, max_value=max_nodes - 1)
    edge = st.tuples(nodes, st.sampled_from(alphabet), nodes)
    return st.lists(edge, min_size=0, max_size=max_edges).map(GraphDatabase.from_edges)


class TestWordInvariants:
    @SETTINGS
    @given(small_words)
    def test_mirror_is_involutive(self, word):
        assert mirror(mirror(word)) == word

    @SETTINGS
    @given(small_words)
    def test_repeated_letter_iff_fewer_distinct(self, word):
        assert has_repeated_letter(word) == (len(set(word)) < len(word))

    @SETTINGS
    @given(word_sets)
    def test_infix_free_is_idempotent_and_shrinking(self, words):
        reduced = infix_free_words(words)
        assert reduced <= words
        assert infix_free_words(reduced) == reduced

    @SETTINGS
    @given(word_sets)
    def test_memoized_infix_free_equals_fresh_recomputation(self, words):
        # The serving layer relies on Language.infix_free() being memoized on
        # the instance; the cached object must be what a fresh computation on
        # an unmemoized copy of the language produces.
        from repro.languages.infix import infix_free_sublanguage

        language = Language.from_words(words)
        memoized = language.infix_free()
        assert language.infix_free() is memoized
        fresh = infix_free_sublanguage(Language.from_words(words))
        assert memoized.equivalent_to(fresh)
        assert memoized.words() == fresh.words()

    @SETTINGS
    @given(word_sets)
    def test_infix_free_preserves_query(self, words):
        # Q_L and Q_IF(L) agree on every database: check on the word-walk database.
        language = Language.from_words(words)
        reduced = language.infix_free()
        from repro.graphdb import generators

        database = generators.word_chain(sorted(words))
        assert RPQ(language).holds(database) == RPQ(reduced).holds(database)


class TestLanguageInvariants:
    @SETTINGS
    @given(word_sets)
    def test_finite_language_round_trip(self, words):
        language = Language.from_words(words)
        assert language.words() == frozenset(words)

    @SETTINGS
    @given(word_sets)
    def test_mirror_of_mirror_is_identity(self, words):
        language = Language.from_words(words)
        assert language.mirror().mirror().equivalent_to(language)

    @SETTINGS
    @given(word_sets)
    def test_local_languages_are_letter_cartesian(self, words):
        from repro.languages import local

        language = Language.from_words(words)
        assert local.is_local(language) == local.is_letter_cartesian_finite(language)


class TestResilienceInvariants:
    @SETTINGS
    @given(databases())
    def test_resilience_bounded_by_database_size(self, database):
        result = resilience_exact(Language.from_regex("ab"), database)
        assert 0 <= result.value <= len(database)

    @SETTINGS
    @given(databases())
    def test_contingency_set_is_valid(self, database):
        language = Language.from_regex("ab|ba")
        result = resilience_exact(language, database)
        assert verify_contingency_set(language, database, result)

    @SETTINGS
    @given(databases())
    def test_resilience_zero_iff_query_false(self, database):
        language = Language.from_regex("aa")
        result = resilience_exact(language, database)
        assert (result.value == 0) == (not RPQ(language).holds(database))

    @SETTINGS
    @given(databases(alphabet="axb", max_nodes=4, max_edges=8))
    def test_local_flow_agrees_with_exact(self, database):
        language = Language.from_regex("ax*b")
        assert resilience(language, database).value == resilience_exact(language, database).value

    @SETTINGS
    @given(databases(alphabet="abc", max_nodes=4, max_edges=8))
    def test_bcl_flow_agrees_with_exact(self, database):
        language = Language.from_regex("ab|bc")
        assert resilience(language, database).value == resilience_exact(language, database).value

    @SETTINGS
    @given(databases(alphabet="abce", max_nodes=4, max_edges=8))
    def test_one_dangling_agrees_with_exact(self, database):
        language = Language.from_regex("abc|be")
        assert resilience(language, database).value == resilience_exact(language, database).value

    @SETTINGS
    @given(databases(alphabet="ab", max_nodes=4, max_edges=7))
    def test_removing_facts_never_increases_resilience(self, database):
        language = Language.from_regex("ab")
        full = resilience_exact(language, database).value
        if database.facts:
            fact = sorted(database.facts, key=repr)[0]
            smaller = resilience_exact(language, database.remove([fact])).value
            assert smaller <= full

    @SETTINGS
    @given(databases(alphabet="ab", max_nodes=4, max_edges=7))
    def test_mirror_invariance_of_resilience(self, database):
        language = Language.from_regex("ab|ba|aa")
        direct = resilience_exact(language, database).value
        mirrored = resilience_exact(language.mirror(), database.reverse()).value
        assert direct == mirrored
