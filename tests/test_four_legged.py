"""Tests for four-legged languages (Section 5)."""

import pytest

from repro.languages import Language, four_legged


class TestWitnessSearch:
    @pytest.mark.parametrize(
        "expression",
        ["axb|cxd", "axb|cxd|cxb", "ax*b|cxd", "be*c|de*f", "aaaa", "b(aa)*d", "axyb|cxyd"],
    )
    def test_four_legged_languages(self, expression):
        language = Language.from_regex(expression)
        witness = four_legged.find_witness(language)
        assert witness is not None, expression
        assert witness.is_valid_for(language)
        assert four_legged.is_four_legged(language)

    @pytest.mark.parametrize("expression", ["aa", "ab|bc", "ax*b", "ab|ad|cd", "abc|bcd", "aba"])
    def test_not_four_legged(self, expression):
        # Example 5.2: aa and ab|bc are non-local but not four-legged.
        assert not four_legged.is_four_legged(Language.from_regex(expression)), expression

    def test_witness_words(self):
        witness = four_legged.find_witness(Language.from_regex("axb|cxd"))
        assert witness.word_one in Language.from_regex("axb|cxd")
        assert witness.word_two in Language.from_regex("axb|cxd")
        assert witness.cross_word not in Language.from_regex("axb|cxd")
        assert witness.legs_nonempty()

    def test_section_5_2_example_l2_not_four_legged(self):
        # IF(L2) = (a|c) e* (a|d) contains aa but is not four-legged.
        language = Language.from_regex("(a|c)e*(a|d)")
        assert language.contains("aa")
        assert four_legged.find_witness(language) is None


class TestStabilization:
    def test_already_stable_witness(self):
        language = Language.from_regex("axb|cxd")
        witness = four_legged.FourLeggedWitness("x", "a", "b", "c", "d")
        assert witness.is_stable_for(language)
        assert four_legged.stabilize_witness(language, witness) == witness

    def test_lemma_5_5_produces_stable_legs(self):
        for expression in ["axb|cxd|cxb", "aaaa", "aaaaa", "axyb|cxyd|cxyb"]:
            language = Language.from_regex(expression)
            stable = four_legged.find_stable_witness(language)
            assert stable is not None, expression
            assert stable.is_stable_for(language), expression

    def test_stabilize_rejects_invalid_witness(self):
        from repro.exceptions import LanguageError

        language = Language.from_regex("axb|cxd")
        bad = four_legged.FourLeggedWitness("x", "a", "d", "c", "b")
        with pytest.raises(LanguageError):
            four_legged.stabilize_witness(language, bad)


class TestLemma56:
    @pytest.mark.parametrize("expression", ["b(aa)*d", "a(bb)*c", "e(aaa)*f"])
    def test_non_star_free_gives_four_legged_witness(self, expression):
        language = Language.from_regex(expression)
        if not language.is_infix_free():
            language = language.infix_free()
        witness = four_legged.witness_from_non_star_free(language)
        assert witness is not None, expression
        assert witness.is_valid_for(language)
        assert witness.legs_nonempty()

    def test_star_free_language_returns_none(self):
        assert four_legged.witness_from_non_star_free(Language.from_regex("ax*b")) is None
