"""Tests for graph databases in set and bag semantics."""

import pytest

from repro.exceptions import ReproError
from repro.graphdb import BagGraphDatabase, Fact, GraphDatabase, as_bag, as_set


class TestGraphDatabase:
    def test_construction_from_edges(self):
        database = GraphDatabase.from_edges([("u", "a", "v"), ("v", "b", "w")])
        assert len(database) == 2
        assert Fact("u", "a", "v") in database
        assert ("v", "b", "w") in database
        assert ("u", "b", "v") not in database

    def test_nodes_and_alphabet(self):
        database = GraphDatabase.from_edges([("u", "a", "v"), ("v", "b", "w")])
        assert database.nodes == {"u", "v", "w"}
        assert database.alphabet == {"a", "b"}

    def test_duplicate_facts_collapse(self):
        database = GraphDatabase.from_edges([("u", "a", "v"), ("u", "a", "v")])
        assert len(database) == 1

    def test_remove_and_add_are_functional(self):
        database = GraphDatabase.from_edges([("u", "a", "v"), ("v", "b", "w")])
        smaller = database.remove([("u", "a", "v")])
        assert len(smaller) == 1
        assert len(database) == 2
        bigger = smaller.add([("x", "c", "y")])
        assert len(bigger) == 2

    def test_adjacency_maps(self):
        database = GraphDatabase.from_edges([("u", "a", "v"), ("u", "b", "w")])
        assert len(database.outgoing()["u"]) == 2
        assert len(database.incoming()["v"]) == 1

    def test_facts_with_label(self):
        database = GraphDatabase.from_edges([("u", "a", "v"), ("u", "b", "w")])
        assert database.facts_with_label("a") == {Fact("u", "a", "v")}

    def test_is_acyclic(self):
        dag = GraphDatabase.from_edges([("u", "a", "v"), ("v", "a", "w")])
        cycle = dag.add([("w", "a", "u")])
        assert dag.is_acyclic()
        assert not cycle.is_acyclic()

    def test_rename_nodes(self):
        database = GraphDatabase.from_edges([("u", "a", "v")])
        renamed = database.rename_nodes({"u": "x"})
        assert Fact("x", "a", "v") in renamed

    def test_reverse(self):
        database = GraphDatabase.from_edges([("u", "a", "v")])
        assert Fact("v", "a", "u") in database.reverse()

    def test_equality_and_hash(self):
        left = GraphDatabase.from_edges([("u", "a", "v")])
        right = GraphDatabase.from_edges([("u", "a", "v")])
        assert left == right
        assert hash(left) == hash(right)


class TestBagGraphDatabase:
    def test_multiplicities(self):
        bag = BagGraphDatabase.from_edges([("u", "a", "v", 3), ("v", "b", "w", 1)])
        assert bag.multiplicity(("u", "a", "v")) == 3
        assert bag.total_cost([("u", "a", "v"), ("v", "b", "w")]) == 4

    def test_rejects_non_positive_by_default(self):
        with pytest.raises(ReproError):
            BagGraphDatabase.from_edges([("u", "a", "v", 0)])

    def test_extended_semantics_allows_non_positive(self):
        bag = BagGraphDatabase.from_edges([("u", "a", "v", -2)], allow_non_positive=True)
        assert bag.multiplicity(("u", "a", "v")) == -2

    def test_rejects_non_integer(self):
        with pytest.raises(ReproError):
            BagGraphDatabase({("u", "a", "v"): 1.5})

    def test_uniform_from_set_database(self):
        database = GraphDatabase.from_edges([("u", "a", "v")])
        bag = database.to_bag(2)
        assert bag.multiplicity(("u", "a", "v")) == 2

    def test_remove(self):
        bag = BagGraphDatabase.from_edges([("u", "a", "v", 3), ("v", "b", "w", 1)])
        assert len(bag.remove([("u", "a", "v")])) == 1

    def test_reverse(self):
        bag = BagGraphDatabase.from_edges([("u", "a", "v", 3)])
        assert bag.reverse().multiplicity(("v", "a", "u")) == 3

    def test_as_bag_and_as_set(self):
        database = GraphDatabase.from_edges([("u", "a", "v")])
        bag = as_bag(database)
        assert bag.multiplicity(("u", "a", "v")) == 1
        assert as_set(bag) == database
        assert as_bag(bag) is bag
        assert as_set(database) is database


class TestGenerators:
    def test_random_labelled_graph_reproducible(self):
        from repro.graphdb import generators

        first = generators.random_labelled_graph(5, 8, "ab", seed=3)
        second = generators.random_labelled_graph(5, 8, "ab", seed=3)
        assert first == second
        assert len(first) == 8

    def test_word_walk(self):
        from repro.graphdb import generators

        walk = generators.word_walk("abc")
        assert len(walk) == 3
        assert len(walk.nodes) == 4

    def test_layered_flow_database(self):
        from repro.graphdb import generators

        bag = generators.layered_flow_database(3, 2, seed=1)
        assert "a" in bag.alphabet and "b" in bag.alphabet
        assert all(mult >= 1 for mult in bag.multiplicities().values())

    def test_random_undirected_graph(self):
        from repro.graphdb import generators

        edges = generators.random_undirected_graph(6, 0.5, seed=2)
        assert all(left != right for left, right in edges)

    def test_cycle_and_complete_graphs(self):
        from repro.graphdb import generators

        assert len(generators.cycle_graph(5)) == 5
        assert len(generators.complete_graph(5)) == 10
