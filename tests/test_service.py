"""Tests for the parallel resilience serving layer (:mod:`repro.service`)."""

import pytest

from repro.exceptions import SearchBudgetExceeded
from repro.graphdb import BagGraphDatabase, GraphDatabase, generators
from repro.languages import Language
from repro.resilience import resilience, resilience_exact, resilience_many
from repro.rpq import RPQ
from repro.service import (
    BUDGET_EXCEEDED,
    ERROR,
    OK,
    LanguageCache,
    QuerySpec,
    Workload,
    plan_workload,
    resilience_serve,
)

MIXED_QUERIES = ["ax*b", "ab|bc", "abc|be", "aa", "ab", "ε|a", "axb|cxd", "ab|ad|cd"]


def mixed_workload(size=50):
    """A mixed 50-query workload with many duplicates over all method classes."""
    return Workload.coerce([MIXED_QUERIES[i % len(MIXED_QUERIES)] for i in range(size)])


@pytest.fixture(scope="module")
def database():
    return generators.random_labelled_graph(5, 14, "abcdexy", seed=3)


class TestWorkloadModel:
    def test_coerce_mixes_specs_and_bare_queries(self):
        workload = Workload.coerce(["ab", QuerySpec("aa", max_nodes=10), RPQ.from_regex("ab|bc")])
        assert len(workload) == 3
        assert all(isinstance(spec, QuerySpec) for spec in workload)
        assert workload.specs[1].max_nodes == 10

    def test_coerce_is_idempotent(self):
        workload = mixed_workload(5)
        assert Workload.coerce(workload) is workload

    def test_coerce_treats_bare_string_as_one_query(self):
        # Regression: a bare string must become a single-query workload, not be
        # iterated character by character.
        workload = Workload.coerce("ax*b")
        assert len(workload) == 1
        assert workload.specs[0].query == "ax*b"
        assert len(Workload.coerce(Language.from_regex("ab"))) == 1
        assert len(Workload.coerce(QuerySpec("ab"))) == 1

    def test_serve_accepts_bare_string_query(self, database):
        outcomes = resilience_serve("ax*b", database, parallel=False)
        assert len(outcomes) == 1
        assert outcomes[0].ok
        assert outcomes[0].result == resilience("ax*b", database)

    def test_from_queries_applies_uniform_policy(self):
        workload = Workload.from_queries(["aa", "ab"], max_nodes=7, semantics="set")
        assert all(spec.max_nodes == 7 and spec.semantics == "set" for spec in workload)

    def test_display_name(self):
        assert QuerySpec("ab|bc").display_name() == "ab|bc"
        assert QuerySpec(RPQ.from_regex("aa")).display_name() == "aa"
        assert QuerySpec(Language.from_regex("ax*b")).display_name() == "ax*b"


class TestLanguageCache:
    def test_duplicate_strings_share_one_language(self):
        cache = LanguageCache()
        assert cache.language("ab|bc") is cache.language("ab|bc")
        assert len(cache) == 1

    def test_method_is_memoized_per_instance(self):
        cache = LanguageCache()
        language = cache.language("ab|bc")
        assert cache.method(language) == "bcl-flow"
        calls = []
        original = Language.infix_free

        def counting(self):
            calls.append(self)
            return original(self)

        Language.infix_free = counting
        try:
            assert cache.method(language) == "bcl-flow"
        finally:
            Language.infix_free = original
        assert calls == []

    def test_infix_free_is_memoized_on_the_instance(self):
        language = Language.from_regex("ab|bc")
        assert language.infix_free() is language.infix_free()


class TestScheduler:
    def test_flow_queries_run_before_exact(self):
        scheduled, failed = plan_workload(Workload.coerce(["aa", "ax*b", "axb|cxd", "ab|bc"]))
        assert failed == []
        assert [item.planned_method for item in scheduled] == [
            "local-flow", "bcl-flow", "exact", "exact",
        ]
        # Stable by workload position within the same class.
        assert [item.index for item in scheduled] == [1, 3, 0, 2]

    def test_planning_failure_becomes_error_outcome(self):
        scheduled, failed = plan_workload(Workload.coerce(["((", "ab"]))
        assert len(scheduled) == 1
        assert len(failed) == 1
        assert failed[0].status == ERROR
        assert failed[0].index == 0
        assert "RegexSyntaxError" in failed[0].error

    def test_unsupported_query_type_becomes_error_outcome(self, database):
        # Regression: a non-query item must not crash the fleet (the error
        # handler's display_name used to raise its own AttributeError).
        outcomes = resilience_serve(["ab", 42], database, parallel=False)
        assert [outcome.status for outcome in outcomes] == [OK, ERROR]
        assert outcomes[1].query == "42"
        assert "AttributeError" in outcomes[1].error

    def test_forced_method_specs_ship_warm_infix_free(self):
        # Regression: forced-method specs skipped classification, so workers
        # received the language cold and recomputed infix_free() per task.
        scheduled, failed = plan_workload(
            Workload.coerce([QuerySpec("abc|bcd", method="exact")])
        )
        assert failed == []
        assert scheduled[0].language._infix_free is not None

    def test_duplicate_queries_plan_one_language(self):
        cache = LanguageCache()
        scheduled, _ = plan_workload(Workload.coerce(["aa", "aa", "aa"]), cache)
        assert scheduled[0].language is scheduled[1].language is scheduled[2].language


class TestServeParity:
    def test_parallel_identical_to_serial_on_mixed_50_query_workload(self, database):
        workload = mixed_workload(50)
        serial = resilience_serve(workload, database, parallel=False)
        parallel = resilience_serve(workload, database, max_workers=4)
        assert serial == parallel
        assert [outcome.index for outcome in parallel] == list(range(50))

    def test_outcomes_match_resilience_many(self, database):
        workload = mixed_workload(50)
        outcomes = resilience_serve(workload, database, max_workers=4)
        expected = resilience_many([spec.query for spec in workload], database)
        for outcome, result in zip(outcomes, expected):
            assert outcome.status == OK
            assert outcome.result == result
            assert outcome.method == result.method

    def test_parity_on_bag_database(self):
        database = generators.random_labelled_graph(4, 10, "abx", seed=5).to_bag(2)
        workload = Workload.coerce(["ax*b", "aa", "ab", "aa"])
        serial = resilience_serve(workload, database, parallel=False)
        parallel = resilience_serve(workload, database, max_workers=2)
        assert serial == parallel
        assert all(outcome.result.semantics == "bag" for outcome in serial)

    def test_single_worker_equals_serial(self, database):
        workload = mixed_workload(8)
        assert resilience_serve(workload, database, max_workers=1) == resilience_serve(
            workload, database, parallel=False
        )


class TestServeBudgets:
    def test_node_budget_overrun_is_structured_and_fleet_completes(self):
        # An "a"-heavy database so the exact searches genuinely branch.
        database = generators.random_labelled_graph(5, 14, "axb", seed=0)
        workload = Workload.coerce(
            ["ax*b", QuerySpec("aa", max_nodes=1), "ab", QuerySpec("aba", max_nodes=1)]
        )
        for outcomes in (
            resilience_serve(workload, database, parallel=False),
            resilience_serve(workload, database, max_workers=2),
        ):
            assert [outcome.status for outcome in outcomes] == [
                OK, BUDGET_EXCEEDED, OK, BUDGET_EXCEEDED,
            ]
            for overrun in (outcomes[1], outcomes[3]):
                assert overrun.result is None
                assert overrun.nodes_explored is not None
                assert overrun.nodes_explored > 1
                assert "SearchBudgetExceeded" in overrun.error

    def test_time_budget_overrun_is_structured(self):
        database = generators.random_labelled_graph(8, 30, "a", seed=0)
        outcomes = resilience_serve(
            [QuerySpec("aa", max_seconds=0.0), "ab"], database, parallel=False
        )
        assert outcomes[0].status == BUDGET_EXCEEDED
        assert "time budget" in outcomes[0].error
        assert outcomes[1].status == OK

    def test_generous_budget_answers_normally(self, database):
        outcomes = resilience_serve(
            [QuerySpec("aa", max_nodes=10_000_000)], database, parallel=False
        )
        assert outcomes[0].status == OK
        assert outcomes[0].result == resilience("aa", database)


class TestServeErrors:
    def test_errors_are_captured_not_raised(self, database):
        workload = Workload.coerce(
            ["((", QuerySpec("aa", method="local-flow"), "ab"]
        )
        for outcomes in (
            resilience_serve(workload, database, parallel=False),
            resilience_serve(workload, database, max_workers=2),
        ):
            assert [outcome.status for outcome in outcomes] == [ERROR, ERROR, OK]
            assert "RegexSyntaxError" in outcomes[0].error
            assert "ReproError" in outcomes[1].error

    def test_forced_method_with_unsafe_runs(self, database):
        outcomes = resilience_serve(
            [QuerySpec("aa", method="local-flow", unsafe=True)], database, parallel=False
        )
        assert outcomes[0].status == OK
        assert outcomes[0].method == "local-flow"

    def test_invalid_max_workers_raises(self, database):
        with pytest.raises(ValueError):
            resilience_serve(["ab"], database, max_workers=0)

    def test_empty_workload(self, database):
        assert resilience_serve([], database) == []


class TestResilienceManyCache:
    def test_duplicate_queries_compute_infix_free_once(self, database):
        calls = []
        original = Language.infix_free

        def counting(self):
            calls.append(self)
            return original(self)

        Language.infix_free = counting
        try:
            results = resilience_many(["ab|bc", "ab|bc", "ab|bc"], database)
        finally:
            Language.infix_free = original
        assert len(results) == 3
        assert results[0] == results[1] == results[2]
        # One shared Language instance -> infix_free body ran at most once per
        # call site, and the expensive computation itself exactly once.
        assert len({id(language) for language in calls}) == 1

    def test_duplicate_queries_classify_once(self, database):
        from repro.resilience import engine

        calls = []
        original = engine.choose_method

        def counting(language, **kwargs):
            calls.append(language)
            return original(language, **kwargs)

        engine.choose_method = counting
        try:
            resilience_many(["ab|bc"] * 5, database)
        finally:
            engine.choose_method = original
        assert len(calls) == 1

    def test_shared_cache_across_batches(self, database):
        cache = LanguageCache()
        resilience_many(["ab|bc"], database, cache=cache)
        language = cache.language("ab|bc")
        resilience_many(["ab|bc"], database, cache=cache)
        assert cache.language("ab|bc") is language


class TestBudgetExceptionDirectly:
    def test_exact_raises_dedicated_exception(self):
        database = generators.random_labelled_graph(4, 8, "a", seed=0)
        with pytest.raises(SearchBudgetExceeded) as excinfo:
            resilience_exact(Language.from_regex("aa"), database, max_nodes=1)
        assert excinfo.value.nodes_explored > 1
        assert excinfo.value.max_nodes == 1

    def test_database_pickles_without_derived_caches(self):
        # The pool initializer ships the database to every worker; a warmed
        # database must pickle as lean as a cold one (the index and adjacency
        # caches are derived and rebuilt by the worker's warm-up).
        import pickle

        cold = generators.random_labelled_graph(6, 20, "ab", seed=1)
        cold_size = len(pickle.dumps(cold))
        cold.index()
        cold.outgoing()
        cold.incoming()
        assert len(pickle.dumps(cold)) == cold_size
        restored = pickle.loads(pickle.dumps(cold))
        assert restored == cold
        assert restored.nodes == cold.nodes  # caches rebuild lazily

        bag = cold.to_bag(2)
        bag_size = len(pickle.dumps(bag))
        bag.index()
        _ = bag.database
        assert len(pickle.dumps(bag)) == bag_size
        assert pickle.loads(pickle.dumps(bag)).multiplicities() == bag.multiplicities()

    def test_budget_exception_pickles_with_diagnostics(self):
        # The exception must survive the process boundaries the serving layer
        # introduces (a worker's raise crossing a caller's own pool).
        import pickle

        error = SearchBudgetExceeded("over budget", nodes_explored=7, max_nodes=3, max_seconds=0.5)
        restored = pickle.loads(pickle.dumps(error))
        assert isinstance(restored, SearchBudgetExceeded)
        assert str(restored) == "over budget"
        assert restored.nodes_explored == 7
        assert restored.max_nodes == 3
        assert restored.max_seconds == 0.5
