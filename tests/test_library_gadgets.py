"""Machine verification of every concrete gadget figure of the paper."""

import pytest

from repro.hardness import library, verify_gadget
from repro.languages import Language

FIGURE_GADGETS = [
    ("aa", library.gadget_for_aa, 5),
    ("aaa", library.gadget_for_aaa, 3),
    ("axb|cxd", library.gadget_for_axb_cxd, 9),
    ("aba|bab", library.gadget_for_aba_bab, 5),
    ("aab", library.gadget_for_aab, 3),
    ("ab|bc|ca", library.gadget_for_ab_bc_ca, 7),
    ("abcd|be|ef", library.gadget_for_abcd_be_ef, 7),
    ("abcd|bef", library.gadget_for_abcd_bef, 5),
]


class TestFigureGadgets:
    @pytest.mark.parametrize("expression, factory, length", FIGURE_GADGETS)
    def test_gadget_verifies(self, expression, factory, length):
        verification = verify_gadget(Language.from_regex(expression), factory())
        assert verification.valid, verification.reason
        assert verification.path_length == length
        assert verification.path_length % 2 == 1

    def test_figure_15_and_16_share_the_database(self):
        assert library.gadget_for_abcd_be_ef().database == library.gadget_for_abcd_bef().database

    def test_figure_10_reuses_figure_3b(self):
        assert library.gadget_for_aaa().database == library.gadget_for_aa().database

    def test_aab_gadget_relabelling(self):
        gadget = library.gadget_for_aab("x", "y")
        verification = verify_gadget(Language.from_regex("xxy"), gadget)
        assert verification.valid

    def test_aab_gadget_rejects_equal_letters(self):
        with pytest.raises(ValueError):
            library.gadget_for_aab("a", "a")

    def test_named_gadget_registry(self):
        assert set(library.NAMED_GADGETS) == {
            "aa", "aaa", "axb|cxd", "aba|bab", "aab", "ab|bc|ca", "abcd|be|ef", "abcd|bef",
        }

    def test_gadgets_work_for_superset_languages(self):
        # Claim 6.10/6.11/6.14 apply to *any* infix-free language containing the
        # relevant words, as long as the gadget's alphabet walks stay controlled.
        verification = verify_gadget(Language.from_regex("aba|bab|cd"), library.gadget_for_aba_bab())
        assert verification.valid
        verification = verify_gadget(Language.from_regex("aab|zz"), library.gadget_for_aab())
        assert verification.valid
