"""Unit tests for the EpsilonNFA class (Section 2 formalisms)."""

import pytest

from repro.exceptions import LanguageError
from repro.languages.automata import EpsilonNFA, dfa_run, dfa_transition_map


def figure_2a() -> EpsilonNFA:
    """The local DFA A1 of Figure 2a for ``a x* b``."""
    return EpsilonNFA.build(
        states=["s1", "s2", "s3"],
        initial=["s1"],
        final=["s3"],
        transitions=[("s1", "a", "s2"), ("s2", "x", "s2"), ("s2", "b", "s3")],
    )


def figure_2b() -> EpsilonNFA:
    """The local DFA A2 of Figure 2b for ``ab|ad|cd``."""
    return EpsilonNFA.build(
        states=["s1", "s2", "s3", "s4", "s5"],
        initial=["s1"],
        final=["s3", "s5"],
        transitions=[
            ("s1", "a", "s2"),
            ("s2", "b", "s3"),
            ("s2", "d", "s5"),
            ("s1", "c", "s4"),
            ("s4", "d", "s5"),
        ],
    )


def figure_2c() -> EpsilonNFA:
    """The RO-epsilon-NFA A3 of Figure 2c for ``ab|ad|cd``."""
    return EpsilonNFA.build(
        states=["s1", "s2", "s3", "s4", "s5"],
        initial=["s1"],
        final=["s3", "s5"],
        transitions=[
            ("s1", "a", "s2"),
            ("s2", "b", "s3"),
            ("s1", "c", "s4"),
            ("s2", None, "s4"),
            ("s4", "d", "s5"),
        ],
    )


class TestConstruction:
    def test_build_rejects_unknown_states(self):
        with pytest.raises(LanguageError):
            EpsilonNFA.build(["q"], ["q"], ["q"], [("q", "a", "missing")])

    def test_build_rejects_bad_initial(self):
        with pytest.raises(LanguageError):
            EpsilonNFA.build(["q"], ["other"], [], [])

    def test_for_word(self):
        automaton = EpsilonNFA.for_word("abc")
        assert automaton.accepts("abc")
        assert not automaton.accepts("ab")
        assert not automaton.accepts("abcd")

    def test_for_finite_language(self):
        automaton = EpsilonNFA.for_finite_language(["ab", "cd", ""])
        assert automaton.accepts("ab")
        assert automaton.accepts("cd")
        assert automaton.accepts("")
        assert not automaton.accepts("ad")

    def test_empty_language(self):
        automaton = EpsilonNFA.empty_language("ab")
        assert not automaton.accepts("")
        assert not automaton.accepts("a")
        assert automaton.alphabet == frozenset("ab")

    def test_size_counts_states_and_transitions(self):
        automaton = figure_2a()
        assert automaton.size == 3 + 3


class TestMembership:
    def test_figure_2a_accepts_ax_star_b(self):
        automaton = figure_2a()
        assert automaton.accepts("ab")
        assert automaton.accepts("axb")
        assert automaton.accepts("axxxxb")
        assert not automaton.accepts("a")
        assert not automaton.accepts("axx")
        assert not automaton.accepts("xb")

    def test_figure_2c_epsilon_transition_run(self):
        # The example accepting run of A3 on "ad" from the paper.
        automaton = figure_2c()
        assert automaton.accepts("ad")
        assert automaton.accepts("ab")
        assert automaton.accepts("cd")
        assert not automaton.accepts("cb")

    def test_contains_operator(self):
        assert "ab" in figure_2b()


class TestClassPredicates:
    def test_is_dfa(self):
        assert figure_2a().is_dfa()
        assert figure_2b().is_dfa()
        assert not figure_2c().is_dfa()

    def test_is_nfa(self):
        assert figure_2b().is_nfa()
        assert not figure_2c().is_nfa()

    def test_local_dfa_detection(self):
        assert figure_2a().is_local_dfa()
        assert figure_2b().is_local_dfa()

    def test_non_local_dfa(self):
        automaton = EpsilonNFA.build(
            ["q0", "q1", "q2"],
            ["q0"],
            ["q2"],
            [("q0", "a", "q1"), ("q1", "a", "q2")],
        )
        assert automaton.is_dfa()
        assert not automaton.is_local_dfa()

    def test_read_once(self):
        assert figure_2a().is_read_once()
        assert not figure_2b().is_read_once()  # two d-transitions
        assert figure_2c().is_read_once()


class TestTransformations:
    def test_trim_removes_useless_states(self):
        automaton = EpsilonNFA.build(
            ["q0", "q1", "junk"],
            ["q0"],
            ["q1"],
            [("q0", "a", "q1"), ("q1", "b", "junk")],
        )
        trimmed = automaton.trim()
        assert "junk" not in trimmed.states
        assert trimmed.accepts("a")

    def test_trim_empty_language(self):
        automaton = EpsilonNFA.build(["q0", "q1"], ["q0"], [], [("q0", "a", "q1")])
        assert not automaton.trim().final

    def test_remove_epsilon_preserves_language(self):
        automaton = figure_2c()
        without = automaton.remove_epsilon()
        assert without.is_nfa()
        for word in ["ab", "ad", "cd", "cb", "a", ""]:
            assert automaton.accepts(word) == without.accepts(word)

    def test_reverse_recognizes_mirror(self):
        automaton = figure_2a()
        reverse = automaton.reverse()
        assert reverse.accepts("ba")
        assert reverse.accepts("bxxa")
        assert not reverse.accepts("ab")

    def test_relabel_preserves_language(self):
        automaton = figure_2c()
        relabelled = automaton.relabel()
        assert set(relabelled.states) == set(range(len(automaton.states)))
        for word in ["ab", "ad", "cd", "cb"]:
            assert automaton.accepts(word) == relabelled.accepts(word)

    def test_epsilon_closure(self):
        automaton = figure_2c()
        closure = automaton.epsilon_closure(["s2"])
        assert closure == frozenset({"s2", "s4"})


class TestDfaHelpers:
    def test_dfa_transition_map(self):
        table = dfa_transition_map(figure_2a())
        assert table[("s1", "a")] == "s2"
        assert table[("s2", "x")] == "s2"

    def test_dfa_transition_map_rejects_nfa(self):
        with pytest.raises(LanguageError):
            dfa_transition_map(figure_2c())

    def test_dfa_run(self):
        run = dfa_run(figure_2a(), "axb")
        assert run == ["s1", "s2", "s2", "s3"]

    def test_dfa_run_stuck(self):
        assert dfa_run(figure_2a(), "ba") is None

    def test_describe_mentions_kind(self):
        assert "DFA" in figure_2a().describe()
        assert "eps-NFA" in figure_2c().describe()
