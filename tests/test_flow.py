"""Tests for the flow-network substrate (Dinic max-flow / min-cut)."""

import math

import pytest

from repro.flow import INFINITY, FlowNetwork, min_cut, min_cut_value


def diamond_network(cap_left=3, cap_right=2) -> FlowNetwork:
    network = FlowNetwork(source="s", target="t")
    network.add_edge("s", "u", cap_left)
    network.add_edge("s", "v", cap_right)
    network.add_edge("u", "t", cap_right)
    network.add_edge("v", "t", cap_left)
    network.add_edge("u", "v", 1)
    return network


class TestMinCutValues:
    def test_single_edge(self):
        network = FlowNetwork(source="s", target="t")
        network.add_edge("s", "t", 7)
        assert min_cut_value(network) == 7

    def test_two_parallel_edges(self):
        network = FlowNetwork(source="s", target="t")
        network.add_edge("s", "t", 2)
        network.add_edge("s", "t", 3)
        assert min_cut_value(network) == 5

    def test_series_takes_minimum(self):
        network = FlowNetwork(source="s", target="t")
        network.add_edge("s", "m", 5)
        network.add_edge("m", "t", 2)
        assert min_cut_value(network) == 2

    def test_diamond(self):
        # Max flow: 2 along s-u-t, 2 along s-v-t, and 1 along s-u-v-t.
        assert min_cut_value(diamond_network()) == 5

    def test_disconnected(self):
        network = FlowNetwork(source="s", target="t")
        network.add_edge("s", "u", 4)
        assert min_cut_value(network) == 0

    def test_infinite_cut(self):
        network = FlowNetwork(source="s", target="t")
        network.add_edge("s", "m", INFINITY)
        network.add_edge("m", "t", INFINITY)
        assert min_cut_value(network) == math.inf

    def test_infinite_edge_bypassed_by_finite_cut(self):
        network = FlowNetwork(source="s", target="t")
        network.add_edge("s", "m", INFINITY)
        network.add_edge("m", "t", 3)
        assert min_cut_value(network) == 3

    def test_bigger_layered_network(self):
        network = FlowNetwork(source="s", target="t")
        for index in range(5):
            network.add_edge("s", f"u{index}", 2)
            network.add_edge(f"u{index}", f"v{index}", 1)
            network.add_edge(f"v{index}", "t", 2)
        assert min_cut_value(network) == 5


class TestCapacityArithmetic:
    def test_integral_capacities_stay_exact(self):
        # Integral networks run in exact int arithmetic and snap to a float int.
        network = diamond_network()
        value = min_cut_value(network)
        assert value == 5
        assert isinstance(value, float)

    def test_fractional_optimum_is_not_misrounded(self):
        # Regression: the seed snapped with math.isclose(value, round(value)),
        # which collapses a genuinely fractional optimum such as 3 + 1e-10 to 3.
        network = FlowNetwork(source="s", target="t")
        network.add_edge("s", "t", 3 + 1e-10)
        value = min_cut_value(network)
        assert value == 3 + 1e-10
        assert value != 3

    def test_fractional_capacities_supported(self):
        network = FlowNetwork(source="s", target="t")
        network.add_edge("s", "m", 2.5)
        network.add_edge("m", "t", 0.75)
        assert min_cut_value(network) == 0.75

    def test_mixed_integral_and_infinite_capacities_snap(self):
        network = FlowNetwork(source="s", target="t")
        network.add_edge("s", "m", INFINITY)
        network.add_edge("m", "t", 4.0)
        assert min_cut_value(network) == 4.0


class TestCutEdges:
    def test_cut_edges_form_a_cut(self):
        network = diamond_network()
        result = min_cut(network)
        assert network.is_cut(result.cut_edges)
        assert sum(edge.capacity for edge in result.cut_edges) == result.value

    def test_cut_keys_round_trip(self):
        network = FlowNetwork(source="s", target="t")
        network.add_edge("s", "m", 5, key="first")
        network.add_edge("m", "t", 2, key="second")
        result = min_cut(network)
        assert result.cut_keys == ("second",)

    def test_source_side_contains_source(self):
        result = min_cut(diamond_network())
        assert "s" in result.source_side
        assert "t" not in result.source_side

    def test_zero_capacity_edges_are_ignored(self):
        network = FlowNetwork(source="s", target="t")
        network.add_edge("s", "t", 0)
        assert min_cut_value(network) == 0
        assert network.is_cut([])

    def test_negative_capacity_rejected(self):
        network = FlowNetwork(source="s", target="t")
        with pytest.raises(ValueError):
            network.add_edge("s", "t", -1)


class TestAgainstNetworkx:
    def test_random_networks_match_networkx(self):
        networkx = pytest.importorskip("networkx")
        import random

        for seed in range(8):
            rng = random.Random(seed)
            graph = networkx.DiGraph()
            network = FlowNetwork(source=0, target=7)
            for _ in range(20):
                left, right = rng.randrange(8), rng.randrange(8)
                if left == right:
                    continue
                capacity = rng.randint(1, 9)
                network.add_edge(left, right, capacity)
                if graph.has_edge(left, right):
                    graph[left][right]["capacity"] += capacity
                else:
                    graph.add_edge(left, right, capacity=capacity)
            graph.add_node(0)
            graph.add_node(7)
            expected = networkx.maximum_flow_value(graph, 0, 7) if graph.has_node(0) else 0
            assert min_cut_value(network) == expected, seed
