"""Tests for the Theorem 3.13 MinCut reduction (local languages)."""

import pytest

from repro.exceptions import NotLocalError
from repro.graphdb import BagGraphDatabase, GraphDatabase, generators
from repro.languages import Language
from repro.resilience import (
    resilience_exact,
    resilience_local,
    verify_contingency_set,
)
from repro.resilience.local_flow import build_product_network, resilience_local_via_profile
from repro.languages import read_once


class TestProductNetwork:
    def test_one_finite_edge_per_fact(self):
        language = Language.from_regex("ab|ad|cd")
        automaton = read_once.read_once_automaton(language)
        database = generators.random_labelled_graph(4, 8, "abcd", seed=0).to_bag(1)
        network = build_product_network(automaton, database)
        finite_edges = [edge for edge in network.edges if edge.capacity != float("inf")]
        covered_facts = {edge.key for edge in finite_edges}
        expected = {fact for fact in database.facts if fact.label in language.alphabet}
        assert covered_facts == expected
        assert len(finite_edges) == len(expected)

    def test_rejects_non_read_once_automaton(self):
        language = Language.from_regex("ab|ad|cd")
        database = GraphDatabase.from_edges([("u", "a", "v")]).to_bag(1)
        with pytest.raises(NotLocalError):
            build_product_network(language.automaton, database)


class TestCorrectness:
    @pytest.mark.parametrize("expression", ["ax*b", "ab|ad|cd", "abc|abd", "a|b", "axb|axc"])
    def test_agrees_with_exact_on_random_set_databases(self, expression):
        language = Language.from_regex(expression)
        alphabet = "".join(sorted(language.alphabet))
        for seed in range(5):
            database = generators.random_labelled_graph(5, 10, alphabet, seed=seed)
            flow_result = resilience_local(language, database)
            exact_result = resilience_exact(language, database)
            assert flow_result.value == exact_result.value, (expression, seed)
            assert verify_contingency_set(language, database, flow_result), (expression, seed)

    def test_agrees_with_exact_on_bag_databases(self):
        language = Language.from_regex("ab|ad|cd")
        for seed in range(5):
            bag = generators.random_bag_database(5, 10, "abcd", seed=seed, max_multiplicity=6)
            flow_result = resilience_local(language, bag)
            exact_result = resilience_exact(language, bag)
            assert flow_result.value == exact_result.value, seed
            assert verify_contingency_set(language, bag, flow_result), seed

    def test_mincut_connection_on_layered_flow(self):
        # Section 1: RES_bag(a x* b) on a flow-network database equals MinCut.
        from repro.flow import FlowNetwork, min_cut_value

        bag = generators.layered_flow_database(3, 3, seed=4)
        result = resilience_local(Language.from_regex("ax*b"), bag)
        network = FlowNetwork(source="SRC", target="SNK")
        for fact, multiplicity in bag.multiplicities().items():
            network.add_edge(fact.source, fact.target, multiplicity)
        assert result.value == min_cut_value(network)

    def test_raises_for_non_local_language(self):
        database = GraphDatabase.from_edges([("u", "a", "v")])
        with pytest.raises(NotLocalError):
            resilience_local(Language.from_regex("aa"), database)

    def test_unchecked_combined_complexity_mode(self):
        database = GraphDatabase.from_edges([("s", "a", "u"), ("u", "x", "v"), ("v", "b", "t")])
        result = resilience_local(Language.from_regex("ax*b"), database, check_local=False)
        assert result.value == 1

    def test_epsilon_language(self):
        database = GraphDatabase.from_edges([("u", "a", "v")])
        result = resilience_local(Language.from_regex("ε|a"), database)
        assert result.is_infinite

    def test_query_false_gives_zero(self):
        database = GraphDatabase.from_edges([("u", "z", "v")])
        result = resilience_local(Language.from_regex("ab|ad|cd"), database)
        assert result.value == 0
        assert result.contingency_set == frozenset()

    def test_profile_variant_agrees(self):
        language = Language.from_regex("ab|ad|cd")
        for seed in range(3):
            database = generators.random_labelled_graph(5, 9, "abcd", seed=seed)
            assert (
                resilience_local(language, database).value
                == resilience_local_via_profile(language, database).value
            )

    def test_if_of_language_used_transparently(self):
        # L0 = a | aa: IF(L0) = a is local; the engine handles this (Section 3.2).
        from repro.resilience import resilience

        database = GraphDatabase.from_edges([("u", "a", "v"), ("v", "a", "w")])
        result = resilience(Language.from_regex("a|aa"), database)
        assert result.value == 2

    def test_details_contain_network_size(self):
        # The sizes are the compiled product graph's (trimmed to its useful
        # core), so a database with an actual a-x*-b path is needed for the
        # edge count to be positive.
        bag = generators.layered_flow_database(3, 3, seed=4)
        result = resilience_local(Language.from_regex("ax*b"), bag)
        assert result.value > 0
        assert result.details["network_nodes"] > 0
        assert result.details["network_edges"] > 0

    def test_details_network_empty_when_query_cannot_match(self):
        # No a-x*-b path: the trimmed product graph is empty and resilience 0.
        database = generators.random_labelled_graph(4, 6, "axb", seed=0)
        result = resilience_local(Language.from_regex("ax*b"), database)
        assert result.value == 0
        assert result.details["network_edges"] == 0
