"""Tests for neutral letters and Lemma 5.8 / Proposition 5.7 (Section 5.2)."""

import pytest

from repro.languages import Language, neutral


class TestNeutralLetterDetection:
    def test_neutral_letter_of_l1(self):
        # L1 = e*be*ce* | e*de*fe* has neutral letter e.
        language = Language.from_regex("e*be*ce*|e*de*fe*")
        assert neutral.is_neutral_letter(language, "e")
        assert neutral.neutral_letters(language) == frozenset("e")

    def test_neutral_letter_of_l2(self):
        language = Language.from_regex("e*(a|c)e*(a|d)e*")
        assert neutral.neutral_letters(language) == frozenset("e")

    def test_no_neutral_letter(self):
        assert neutral.neutral_letters(Language.from_regex("ab|cd")) == frozenset()
        assert neutral.neutral_letters(Language.from_regex("ax*b")) == frozenset()

    def test_non_neutral_because_of_deletion(self):
        # e can be inserted freely in e+ but deleting the only e changes membership.
        language = Language.from_regex("ee*")
        assert not neutral.is_neutral_letter(language, "e")


class TestLemma58:
    def test_case_four_legged(self):
        # IF(L1) = b e* c | d e* f is four-legged (Section 5.2).
        language = Language.from_regex("e*be*ce*|e*de*fe*")
        analysis = neutral.lemma_5_8_analysis(language)
        assert analysis.neutral_letter == "e"
        assert not analysis.infix_free_is_local
        assert analysis.four_legged_witness is not None

    def test_case_square_letter(self):
        # IF(L2) = (a|c) e* (a|d) contains aa but is not four-legged.
        language = Language.from_regex("e*(a|c)e*(a|d)e*")
        analysis = neutral.lemma_5_8_analysis(language)
        assert analysis.square_letter == "a"
        assert analysis.four_legged_witness is None

    def test_local_case(self):
        # a e* b with neutral letter e: IF is local, resilience is tractable.
        language = Language.from_regex("e*ae*be*|e*ae*")
        analysis = neutral.lemma_5_8_analysis(language)
        assert analysis.infix_free_is_local


class TestProposition57Dichotomy:
    def test_tractable_side(self):
        from repro.classify import classify

        result = classify(Language.from_regex("e*ae*be*|e*ae*"))
        assert result.complexity == "PTIME"

    def test_hard_side_four_legged(self):
        from repro.classify import classify

        result = classify(Language.from_regex("e*be*ce*|e*de*fe*"))
        assert result.complexity == "NP-hard"

    def test_hard_side_square(self):
        from repro.classify import classify

        result = classify(Language.from_regex("e*(a|c)e*(a|d)e*"))
        assert result.complexity == "NP-hard"
