"""Tests for RPQ evaluation, witness walks and match enumeration."""

import pytest

from repro.exceptions import NotApplicableError
from repro.graphdb import Fact, GraphDatabase
from repro.languages import Language
from repro.rpq import RPQ, enumerate_matches, minimal_matches
from repro.rpq.evaluation import walk_label, is_walk


@pytest.fixture
def flow_db() -> GraphDatabase:
    return GraphDatabase.from_edges(
        [
            ("s", "a", "u"),
            ("u", "x", "v"),
            ("v", "x", "w"),
            ("w", "b", "t"),
            ("u", "b", "t"),
        ]
    )


class TestEvaluation:
    def test_holds_on_walk(self, flow_db):
        assert RPQ.from_regex("ax*b").holds(flow_db)
        assert RPQ.from_regex("axxb").holds(flow_db)
        assert not RPQ.from_regex("axxxb").holds(flow_db)
        assert not RPQ.from_regex("ba").holds(flow_db)

    def test_epsilon_always_holds(self, flow_db):
        assert RPQ.from_regex("ε|zz").holds(flow_db)
        assert RPQ.from_regex("ε").holds(GraphDatabase())

    def test_empty_database(self):
        assert not RPQ.from_regex("a").holds(GraphDatabase())

    def test_bag_database_evaluation(self, flow_db):
        assert RPQ.from_regex("ax*b").holds(flow_db.to_bag(5))

    def test_witness_walk_is_shortest(self, flow_db):
        walk = RPQ.from_regex("ax*b").witness_walk(flow_db)
        assert walk is not None
        assert is_walk(walk)
        assert walk_label(walk) == "ab"  # the shortest witness uses u -> t directly

    def test_witness_walk_none(self, flow_db):
        assert RPQ.from_regex("bb").witness_walk(flow_db) is None

    def test_walk_semantics_allows_repeated_edges(self):
        # A single x-loop suffices for arbitrarily many x's (walk semantics).
        database = GraphDatabase.from_edges([("s", "a", "u"), ("u", "x", "u"), ("u", "b", "t")])
        assert RPQ.from_regex("axxxxxb").holds(database)

    def test_is_contingency_set(self, flow_db):
        query = RPQ.from_regex("ax*b")
        assert query.is_contingency_set(flow_db, {Fact("s", "a", "u")})
        assert not query.is_contingency_set(flow_db, {Fact("u", "b", "t")})


class TestMatchEnumeration:
    def test_matches_of_aa(self):
        database = GraphDatabase.from_edges([("u", "a", "v"), ("v", "a", "w"), ("w", "a", "z")])
        matches = enumerate_matches(Language.from_regex("aa"), database)
        assert matches == {
            frozenset({Fact("u", "a", "v"), Fact("v", "a", "w")}),
            frozenset({Fact("v", "a", "w"), Fact("w", "a", "z")}),
        }

    def test_match_on_self_loop_is_singleton_set(self):
        database = GraphDatabase.from_edges([("u", "a", "u")])
        matches = enumerate_matches(Language.from_regex("aa"), database)
        assert matches == {frozenset({Fact("u", "a", "u")})}

    def test_epsilon_match(self):
        database = GraphDatabase.from_edges([("u", "a", "v")])
        matches = enumerate_matches(Language.from_regex("ε|b"), database)
        assert frozenset() in matches

    def test_infinite_language_on_dag(self):
        database = GraphDatabase.from_edges(
            [("s", "a", "u"), ("u", "x", "v"), ("v", "b", "t")]
        )
        matches = enumerate_matches(Language.from_regex("ax*b"), database)
        assert len(matches) == 1

    def test_infinite_language_on_cyclic_database_requires_bound(self):
        database = GraphDatabase.from_edges([("s", "a", "u"), ("u", "x", "u"), ("u", "b", "t")])
        with pytest.raises(NotApplicableError):
            enumerate_matches(Language.from_regex("ax*b"), database)
        bounded = enumerate_matches(Language.from_regex("ax*b"), database, max_walk_length=4)
        assert len(bounded) >= 2

    def test_rpq_matches_method(self):
        database = GraphDatabase.from_edges([("u", "a", "v"), ("v", "b", "w")])
        assert len(RPQ.from_regex("ab").matches(database)) == 1

    def test_minimal_matches(self):
        small = frozenset({Fact("u", "a", "v")})
        large = frozenset({Fact("u", "a", "v"), Fact("v", "b", "w")})
        assert minimal_matches({small, large}) == {small}
