"""Unit tests for the regular-expression parser."""

import pytest

from repro.exceptions import RegexSyntaxError
from repro.languages.regex import node_to_string, parse_regex, regex_to_automaton


class TestParsing:
    @pytest.mark.parametrize(
        "expression, accepted, rejected",
        [
            ("ab", ["ab"], ["a", "b", "abc", ""]),
            ("ab|ad|cd", ["ab", "ad", "cd"], ["cb", "a", ""]),
            ("ax*b", ["ab", "axb", "axxxb"], ["a", "xb", "axa"]),
            ("a(b|c)d", ["abd", "acd"], ["ad", "abcd"]),
            ("b(aa)*d", ["bd", "baad", "baaaad"], ["bad", "baaad"]),
            ("(ab)*", ["", "ab", "abab"], ["a", "aba"]),
            ("ε|a", ["", "a"], ["aa"]),
            ("_|a", ["", "a"], ["aa"]),
            ("ab*d|ac*d|bc", ["ad", "abd", "abbd", "acd", "bc"], ["abc", "abcd"]),
        ],
    )
    def test_membership(self, expression, accepted, rejected):
        automaton = regex_to_automaton(expression)
        for word in accepted:
            assert automaton.accepts(word), (expression, word)
        for word in rejected:
            assert not automaton.accepts(word), (expression, word)

    def test_nested_parentheses(self):
        automaton = regex_to_automaton("((a|b)c)*d")
        assert automaton.accepts("d")
        assert automaton.accepts("acd")
        assert automaton.accepts("acbcd")
        assert not automaton.accepts("abd")

    def test_star_binds_tighter_than_concatenation(self):
        automaton = regex_to_automaton("ab*")
        assert automaton.accepts("a")
        assert automaton.accepts("abbb")
        assert not automaton.accepts("abab")

    def test_union_is_lowest_precedence(self):
        automaton = regex_to_automaton("ab|cd*")
        assert automaton.accepts("ab")
        assert automaton.accepts("c")
        assert automaton.accepts("cddd")
        assert not automaton.accepts("abdd")


class TestErrors:
    @pytest.mark.parametrize("expression", ["(ab", "ab)", "*a", "a**b(", "a b"])
    def test_syntax_errors(self, expression):
        with pytest.raises(RegexSyntaxError):
            regex_to_automaton(expression)

    def test_empty_expression_is_epsilon(self):
        automaton = regex_to_automaton("")
        assert automaton.accepts("")
        assert not automaton.accepts("a")


class TestRendering:
    @pytest.mark.parametrize("expression", ["ab|cd", "ax*b", "a(b|c)d", "(ab)*"])
    def test_round_trip_language(self, expression):
        ast = parse_regex(expression)
        rendered = node_to_string(ast)
        original = regex_to_automaton(expression)
        round_tripped = regex_to_automaton(rendered)
        for word in ["", "a", "ab", "cd", "axb", "abd", "acd", "abab"]:
            assert original.accepts(word) == round_tripped.accepts(word)
