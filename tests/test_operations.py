"""Unit tests for automata algorithms (determinization, boolean operations, ...)."""

import pytest

from repro.exceptions import NotFiniteError
from repro.languages import operations
from repro.languages.automata import EpsilonNFA
from repro.languages.regex import regex_to_automaton


def automaton(expression: str) -> EpsilonNFA:
    return regex_to_automaton(expression)


class TestDeterminize:
    @pytest.mark.parametrize("expression", ["ab|ad|cd", "ax*b", "a(b|c)*d", "abc|bef"])
    def test_determinize_preserves_language(self, expression):
        original = automaton(expression)
        dfa = operations.determinize(original)
        assert dfa.is_dfa()
        for word in ["ab", "ad", "cd", "axb", "ad", "abc", "bef", "abcd", ""]:
            assert original.accepts(word) == dfa.accepts(word)

    def test_complete_adds_sink(self):
        dfa = operations.complete(operations.determinize(automaton("ab")), "ab")
        assert dfa.is_complete_dfa()


class TestBooleanOperations:
    def test_intersection(self):
        left = automaton("a*b")
        right = automaton("ab|b|aab")
        both = operations.intersection(left, right)
        assert both.accepts("ab")
        assert both.accepts("aab")
        assert both.accepts("b")
        assert not both.accepts("aaab") is False or True  # aaab in a*b but not right
        assert not both.accepts("aaab")

    def test_union(self):
        combined = operations.union(automaton("ab"), automaton("cd"))
        assert combined.accepts("ab")
        assert combined.accepts("cd")
        assert not combined.accepts("ad")

    def test_difference(self):
        diff = operations.difference(automaton("ab|ad|cd"), automaton("ad"))
        assert diff.accepts("ab")
        assert diff.accepts("cd")
        assert not diff.accepts("ad")

    def test_complement(self):
        comp = operations.complement(automaton("aa"), "a")
        assert comp.accepts("")
        assert comp.accepts("a")
        assert not comp.accepts("aa")
        assert comp.accepts("aaa")

    def test_concatenation(self):
        concat = operations.concatenation(automaton("a|b"), automaton("c"))
        assert concat.accepts("ac")
        assert concat.accepts("bc")
        assert not concat.accepts("c")

    def test_kleene_star(self):
        star = operations.kleene_star(automaton("ab"))
        assert star.accepts("")
        assert star.accepts("ab")
        assert star.accepts("abab")
        assert not star.accepts("aba")


class TestEquivalence:
    def test_equivalent_regexes(self):
        assert operations.equivalent(automaton("ab|ad"), automaton("a(b|d)"))

    def test_not_equivalent(self):
        assert not operations.equivalent(automaton("ab"), automaton("ab|ad"))

    def test_containment(self):
        assert operations.contains_language(automaton("a*b"), automaton("ab|aab"))
        assert not operations.contains_language(automaton("ab|aab"), automaton("a*b"))

    def test_minimize_produces_equivalent_dfa(self):
        original = automaton("ab|ad|cd")
        minimal = operations.minimize(original)
        assert minimal.is_dfa()
        assert operations.equivalent(original, minimal)

    def test_minimize_is_minimal_for_simple_language(self):
        # The minimal complete DFA for a single word "ab" over {a, b} has 4
        # states: initial, after-a, accepting, sink.
        minimal = operations.minimize(automaton("ab").with_alphabet("ab"))
        assert len(minimal.states) == 4


class TestEmptinessFiniteness:
    def test_is_empty(self):
        assert operations.is_empty(EpsilonNFA.empty_language("a"))
        assert not operations.is_empty(automaton("a"))

    def test_is_finite_true(self):
        assert operations.is_finite(automaton("ab|ad|cd"))
        assert operations.is_finite(automaton("abc|bef"))

    def test_is_finite_false(self):
        assert not operations.is_finite(automaton("ax*b"))
        assert not operations.is_finite(automaton("b(aa)*d"))

    def test_enumerate_finite_language(self):
        assert operations.enumerate_finite_language(automaton("ab|ad|cd")) == {"ab", "ad", "cd"}

    def test_enumerate_rejects_infinite(self):
        with pytest.raises(NotFiniteError):
            operations.enumerate_finite_language(automaton("ax*b"))

    def test_enumerate_words_up_to_length(self):
        found = operations.enumerate_words_up_to_length(automaton("ax*b"), 4)
        assert found == {"ab", "axb", "axxb"}

    def test_shortest_word(self):
        assert operations.shortest_word(automaton("ax*b")) == "ab"
        assert operations.shortest_word(automaton("abc|d")) == "d"
        assert operations.shortest_word(EpsilonNFA.empty_language("a")) is None

    def test_max_word_length(self):
        assert operations.max_word_length(automaton("ab|abcd")) == 4


class TestFreshLetter:
    def test_fresh_letter_avoids_used(self):
        letter = operations.fresh_letter("abc", avoid="xyz")
        assert letter not in set("abcxyz")
        assert len(letter) == 1
