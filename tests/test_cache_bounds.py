"""Tests for the bounded cache tier (ISSUE 10 tentpole).

``LanguageCache`` with ``max_entries`` / ``max_age_seconds`` must keep every
layer bounded with LRU eviction, count evictions, and surface its live
footprint through the ``entries`` / ``bytes_estimate`` gauges — and a bounded
server's cache footprint must stay flat over a long soak instead of growing
with every distinct query ever seen (the unbounded-growth leak class).
"""

import pytest

from repro.graphdb import generators
from repro.resilience import CacheStats, LanguageCache, resilience_many
from repro.service import ResilienceServer
from repro.traffic.generator import TrafficProfile, generate_traffic
from repro.traffic.soak import SoakRunner


@pytest.fixture
def database():
    return generators.random_labelled_graph(5, 14, "abxy", seed=3)


# Distinct, non-equivalent query classes (each its own fingerprint).
DISTINCT = ["ab", "ba", "aa", "bb", "ax*b", "ab|ba", "xy", "yx"]


class TestBoundedLru:
    def test_size_bound_holds_per_layer(self, database):
        cache = LanguageCache(max_entries=3)
        resilience_many(DISTINCT, database, cache=cache)
        # Four layers (expression, class, method memo, result), each capped.
        assert len(cache._by_expression) <= 3
        assert len(cache._classes) <= 3
        assert len(cache._methods) <= 3
        assert len(cache._results) <= 3
        assert cache.stats.entries <= 12
        assert cache.stats.evictions > 0

    def test_unbounded_cache_never_evicts(self, database):
        cache = LanguageCache()
        resilience_many(DISTINCT + DISTINCT, database, cache=cache)
        assert cache.stats.evictions == 0
        assert cache.stats.entries == (
            len(cache._by_expression)
            + len(cache._classes)
            + len(cache._methods)
            + len(cache._results)
        )

    def test_lru_order_keeps_the_recently_used(self, database):
        cache = LanguageCache(max_entries=2)
        cache.language("ab")
        cache.language("ba")
        cache.language("ab")  # touch: "ab" is now the most recent
        cache.language("aa")  # evicts "ba", not "ab"
        assert "ab" in cache._by_expression
        assert "ba" not in cache._by_expression
        assert "aa" in cache._by_expression

    def test_eviction_is_a_cost_never_a_correctness_event(self, database):
        bounded = LanguageCache(max_entries=1)
        unbounded = LanguageCache()
        queries = DISTINCT + list(reversed(DISTINCT)) + DISTINCT
        thrashed = resilience_many(queries, database, cache=bounded)
        reference = resilience_many(queries, database, cache=unbounded)
        assert thrashed == reference
        assert bounded.stats.evictions > 0

    def test_age_bound_expires_idle_entries(self, database):
        clock = [0.0]
        cache = LanguageCache(max_age_seconds=10.0, clock=lambda: clock[0])
        resilience_many(["ab"], database, cache=cache)
        held = cache.stats.entries
        assert held > 0
        clock[0] = 5.0
        resilience_many(["ab"], database, cache=cache)  # touch refreshes stamps
        clock[0] = 12.0  # < 5.0 + 10, so the touched entries survive
        assert cache.lookup_result(cache.language("ab"), database) is not None
        clock[0] = 100.0
        resilience_many(["ba"], database, cache=cache)
        assert cache.stats.evictions >= held
        assert "ab" not in cache._by_expression

    def test_rejects_degenerate_bounds(self):
        with pytest.raises(ValueError):
            LanguageCache(max_entries=0)
        with pytest.raises(ValueError):
            LanguageCache(max_age_seconds=0)

    def test_bytes_estimate_gauge_is_nonnegative_under_thrash(self, database):
        # Regression: languages grow after insertion (memoized infix-free
        # sublanguage), so eviction must subtract the size recorded at
        # insertion, not re-measure — re-measuring drove the gauge negative.
        cache = LanguageCache(max_entries=1)
        resilience_many(DISTINCT + DISTINCT, database, cache=cache)
        assert cache.stats.bytes_estimate >= 0
        assert cache.stats.entries == 4  # one entry per layer

    def test_gauges_round_trip_through_stats_surfaces(self, database):
        cache = LanguageCache(max_entries=2)
        resilience_many(DISTINCT, database, cache=cache)
        snapshot = cache.stats.snapshot()
        payload = snapshot.as_dict()
        for gauge in CacheStats.GAUGE_FIELDS:
            assert gauge in payload
        aggregated = CacheStats.aggregate([snapshot, CacheStats()])
        assert aggregated.entries == snapshot.entries
        assert aggregated.evictions == snapshot.evictions


class TestServerMetricsSurface:
    def test_prometheus_renders_gauges_without_total_suffix(self, database):
        from repro.service import AsyncResilienceServer

        cache = LanguageCache(max_entries=2)
        with ResilienceServer(database, parallel=False, cache=cache) as server:
            server.serve(DISTINCT)
        async_server = AsyncResilienceServer(database, parallel=False, cache=cache)
        try:
            text = async_server.metrics().to_prometheus()
        finally:
            async_server.close()
        assert "# TYPE repro_cache_entries gauge" in text
        assert "# TYPE repro_cache_bytes_estimate gauge" in text
        assert "repro_cache_entries_total" not in text
        assert "# TYPE repro_cache_evictions_total counter" in text
        assert "# TYPE repro_cache_result_uncacheable_total counter" in text

    def test_shared_exchange_cache_is_counted_exactly_once(self, database):
        # Nodes serving from a fleet-shared cache report empty per-node
        # CacheStats; the exchange reports the shared cache itself, so the
        # front-end roll-up sees it exactly once.
        from repro.service import AsyncResilienceServer, ThreadExchange

        cache = LanguageCache(max_entries=2)
        exchange = ThreadExchange(nodes=2, max_workers=1, cache=cache)
        server = AsyncResilienceServer(exchange)
        try:
            import asyncio

            async def drive():
                outcomes = []
                stream = await server.submit(DISTINCT, database=database)
                async for outcome in stream:
                    outcomes.append(outcome)
                return outcomes

            asyncio.run(drive())
            metrics = server.metrics()
        finally:
            server.close()
        assert metrics.cache.evictions == cache.stats.evictions
        assert metrics.cache.entries == cache.stats.entries
        assert metrics.cache.classifications == cache.stats.classifications > 0


class _FootprintTracker:
    """A ``tests/leak_sanitizer.LeakTracker``-style tracker for cache growth.

    Duck-typed to the soak runner's ``leak_tracker`` hook (``start`` /
    ``stop`` / ``leaks``): records the bounded cache's ``entries`` gauge at
    start and reports a leak if the footprint at stop exceeds the hard bound
    the cache's ``max_entries`` implies (4 layers × max_entries).
    """

    def __init__(self, cache: LanguageCache, max_entries: int) -> None:
        self._cache = cache
        self._bound = 4 * max_entries
        self.started_at = None
        self.stopped_at = None

    def start(self) -> None:
        self.started_at = self._cache.stats.entries

    def stop(self) -> None:
        self.stopped_at = self._cache.stats.entries

    def leaks(self) -> list[str]:
        if self.stopped_at is not None and self.stopped_at > self._bound:
            return [
                f"cache footprint grew past its bound: {self.stopped_at} entries "
                f"> {self._bound} (max_entries × layers)"
            ]
        return []


class TestSoakFootprintStaysFlat:
    MAX_ENTRIES = 4

    def test_bounded_cache_footprint_is_flat_across_soak_rounds(self):
        # The satellite bugfix: a server's LanguageCache used to grow with
        # every distinct query for the server's whole lifetime.  With bounds
        # set, repeated soak runs over one shared cache must plateau — the
        # footprint after run N equals the footprint after run 1, while the
        # eviction counter keeps rising (proof the bound is doing the work).
        trace = generate_traffic(TrafficProfile(requests=12, seed=11))
        cache = LanguageCache(max_entries=self.MAX_ENTRIES)
        tracker = _FootprintTracker(cache, self.MAX_ENTRIES)
        footprints, evictions = [], []
        for _ in range(3):
            report = SoakRunner(
                trace, nodes=2, max_workers=1, cache=cache, leak_tracker=tracker
            ).run()
            footprints.append(report.cache["entries"])
            evictions.append(report.cache["evictions"])
        assert all(count <= 4 * self.MAX_ENTRIES for count in footprints)
        # Flat: steady-state footprint, not monotone growth run over run.
        assert footprints[1] == footprints[2]
        assert evictions[0] > 0
        assert evictions[2] > evictions[1] > evictions[0]
        assert tracker.leaks() == []

    def test_soak_report_carries_the_cache_surface(self):
        trace = generate_traffic(TrafficProfile(requests=6, seed=5))
        cache = LanguageCache(max_entries=self.MAX_ENTRIES)
        report = SoakRunner(trace, nodes=2, max_workers=1, cache=cache).run()
        payload = report.as_dict()
        assert payload["cache"]["evictions"] == cache.stats.evictions
        assert payload["cache"]["entries"] == cache.stats.entries <= 4 * self.MAX_ENTRIES
