"""Tests for pre-gadgets, completions, graph encodings and the verification tool."""

import pytest

from repro.exceptions import GadgetError
from repro.graphdb import Fact, GraphDatabase
from repro.hardness import PreGadget, encode_graph, verify_gadget
from repro.hardness.gadgets import GadgetBuilder
from repro.hardness.library import gadget_for_aa
from repro.hardness.verification import describe_condensed_path, require_verified
from repro.languages import Language


class TestPreGadget:
    def test_validate_accepts_figure_3b(self):
        gadget_for_aa().validate()

    def test_validate_rejects_in_element_as_head(self):
        bad = PreGadget(
            GraphDatabase.from_edges([("x", "a", "t_in")]), "t_in", "t_out", "a"
        )
        with pytest.raises(GadgetError):
            bad.validate()

    def test_validate_rejects_equal_endpoints(self):
        bad = PreGadget(GraphDatabase(), "t", "t", "a")
        with pytest.raises(GadgetError):
            bad.validate()

    def test_completion_adds_two_fresh_facts(self):
        gadget = gadget_for_aa()
        completion = gadget.completion()
        assert len(completion) == len(gadget.database) + 2
        assert gadget.in_fact in completion
        assert gadget.out_fact in completion


class TestGadgetBuilder:
    def test_word_path(self):
        builder = GadgetBuilder()
        builder.add_word_path("u", "abc", "v")
        gadget = builder.build("u", "x", "a")
        assert len(gadget.database) == 3

    def test_empty_word_merges_nodes(self):
        builder = GadgetBuilder()
        builder.add_word_path("u", "", "v")
        builder.add_edge("v", "a", "w")
        facts = GadgetBuilder.build(builder, "u", "w2", "a").database.facts
        assert Fact("u", "a", "w") in facts


class TestEncoding:
    def test_encoding_size(self):
        gadget = gadget_for_aa()
        edges = [(0, 1), (1, 2), (2, 0)]
        encoding, vertex_facts = encode_graph(gadget, edges)
        # One fact per vertex plus one gadget copy (4 facts) per edge.
        assert len(encoding) == 3 + 3 * len(gadget.database)
        assert len(vertex_facts) == 3

    def test_claim_4_6_no_walk_across_copies(self):
        # Internal elements of different copies are never connected by a walk:
        # check that every fact entering a copy's internal node comes from the
        # same copy or from a vertex fact.
        gadget = gadget_for_aa()
        encoding, _ = encode_graph(gadget, [(0, 1), (1, 2)])
        for fact in encoding.facts:
            if isinstance(fact.target, tuple) and fact.target[0] == "copy":
                copy_index = fact.target[1]
                assert (
                    not isinstance(fact.source, tuple)
                    or fact.source[0] != "copy"
                    or fact.source[1] == copy_index
                )


class TestVerification:
    def test_figure_3b_verifies_for_aa(self):
        verification = verify_gadget(Language.from_regex("aa"), gadget_for_aa())
        assert verification.valid
        assert verification.path_length == 5
        assert verification.num_matches == 5

    def test_wrong_language_fails(self):
        verification = verify_gadget(Language.from_regex("ab"), gadget_for_aa())
        assert not verification.valid

    def test_epsilon_language_fails(self):
        verification = verify_gadget(Language.from_regex("ε|aa"), gadget_for_aa())
        assert not verification.valid
        assert "empty match" in verification.reason

    def test_no_match_fails(self):
        verification = verify_gadget(Language.from_regex("zz"), gadget_for_aa())
        assert not verification.valid

    def test_require_verified_raises(self):
        with pytest.raises(GadgetError):
            require_verified(Language.from_regex("ab"), gadget_for_aa())

    def test_describe_condensed_path(self):
        verification = verify_gadget(Language.from_regex("aa"), gadget_for_aa())
        path = describe_condensed_path(verification)
        assert len(path) == verification.path_length + 1
        assert "s_in" in path[0]
        assert "s_out" in path[-1]
