"""Warm-pool lifecycle tests for :class:`repro.service.server.ResilienceServer`.

The server's contract has three parts the serving tests don't cover:

* **warmth** — the worker pool (and the workers' database copy) survives
  across :meth:`serve` calls: same pool object, same worker PIDs, no re-fork;
* **lifecycle** — context-manager/:meth:`close` semantics, and a closed
  server refuses work instead of silently forking a new pool;
* **fault tolerance** — a worker process dying breaks one call's in-flight
  queries (structured ``"error"`` outcomes), never the server: the next call
  runs on a fresh pool with correct results.
"""

import os

import pytest

from repro.exceptions import ReproError
from repro.graphdb import generators
from repro.service import ERROR, OK, LanguageCache, QuerySpec, ResilienceServer, Workload
from repro.service.scheduler import plan_workload
from repro.service.serve import _intern_scheduled, _WORKER_LANGUAGES, resilience_serve

MIXED = ["ax*b", "ab|bc", "aa", "ab", "ε|a", "abc|be"]


@pytest.fixture(scope="module")
def database():
    return generators.random_labelled_graph(5, 14, "abcdexy", seed=3)


@pytest.fixture()
def server(database):
    with ResilienceServer(database, max_workers=2) as server:
        yield server


class TestWarmth:
    def test_pool_and_workers_survive_across_serve_calls(self, server, database):
        expected = resilience_serve(MIXED, database, parallel=False)
        assert server.worker_pids() == frozenset()  # cold until the first call
        first = server.serve(MIXED)
        pool = server._pool
        pids = server.worker_pids()
        assert pids, "the first parallel call must create workers"
        for _ in range(3):
            assert server.serve(MIXED) == first == expected
            assert server._pool is pool, "pool object must be reused, not rebuilt"
            assert server.worker_pids() == pids, "serve() must not re-fork workers"

    def test_streaming_and_batch_share_the_same_warm_pool(self, server):
        batch = server.serve(MIXED)
        pids = server.worker_pids()
        streamed = sorted(server.serve_iter(MIXED), key=lambda outcome: outcome.index)
        assert streamed == batch
        assert server.worker_pids() == pids

    def test_session_cache_is_shared_across_calls(self, database):
        with ResilienceServer(database, max_workers=2) as server:
            server.serve(MIXED)
            classifications = server.cache.stats.classifications
            assert classifications > 0
            server.serve(MIXED)
            assert server.cache.stats.classifications == classifications

    def test_serial_server_never_forks(self, database):
        with ResilienceServer(database, parallel=False) as server:
            outcomes = server.serve(MIXED)
            assert server.worker_pids() == frozenset()
        assert outcomes == resilience_serve(MIXED, database, parallel=False)

    def test_single_worker_runs_serially(self, database):
        with ResilienceServer(database, max_workers=1) as server:
            assert all(outcome.ok for outcome in server.serve(MIXED))
            assert server.worker_pids() == frozenset()


class TestWidth:
    def test_pool_grows_when_a_larger_workload_arrives(self, database):
        # A small warm-up call must not cap throughput for the session: the
        # pool is rebuilt wider (one extra fork round) when a bigger workload
        # needs it, and never shrinks back.
        with ResilienceServer(database, max_workers=3) as server:
            small = server.serve(MIXED[:2])
            assert all(outcome.ok for outcome in small)
            assert server._pool_width == 2
            large = server.serve(MIXED * 4)
            assert server._pool_width == 3
            assert large == resilience_serve(MIXED * 4, database, parallel=False)
            server.serve(MIXED[:2])  # smaller again: keep the wide pool
            assert server._pool_width == 3

    def test_abandoned_serve_iter_does_not_wedge_the_server(self, database):
        with ResilienceServer(database, max_workers=2) as server:
            iterator = server.serve_iter(MIXED * 4)
            first = next(iterator)
            assert first.status == OK
            iterator.close()  # abandon mid-stream; queued tasks are cancelled
            assert server.serve(MIXED) == resilience_serve(MIXED, database, parallel=False)

    def test_resuming_serve_iter_after_close_never_forks_a_new_pool(self, database):
        # Regression: a generator suspended *before* dispatching (first yield
        # is a planning failure) and resumed after close() used to fork a
        # fresh pool that nothing would ever shut down.
        server = ResilienceServer(database, max_workers=2)
        iterator = server.serve_iter(["((", *MIXED])  # parse error yields first
        first = next(iterator)
        assert first.status == ERROR
        server.close()
        remainder = list(iterator)
        assert server._pool is None
        assert server.worker_pids() == frozenset()
        assert len(remainder) == len(MIXED)
        assert all(outcome.status == ERROR for outcome in remainder)
        assert all("PoolShutDown" in outcome.error for outcome in remainder)

    def test_resuming_serve_iter_after_close_drains_instead_of_hanging(self, database):
        # Regression: close() between resumptions used to leave the generator
        # blocked forever in wait() on futures of the discarded pool.
        server = ResilienceServer(database, max_workers=2)
        iterator = server.serve_iter(MIXED * 4)
        first = next(iterator)
        assert first.status == OK
        server.close()
        remainder = list(iterator)  # must terminate, not deadlock
        assert len(remainder) == len(MIXED) * 4 - 1
        for outcome in remainder:
            assert outcome.status in (OK, ERROR)
            if outcome.status == ERROR:
                assert "PoolShutDown" in outcome.error or "BrokenProcessPool" in outcome.error


class TestLifecycle:
    def test_close_shuts_the_pool_and_refuses_further_work(self, database):
        server = ResilienceServer(database, max_workers=2)
        server.serve(MIXED)
        assert server.worker_pids()
        server.close()
        assert server.worker_pids() == frozenset()
        with pytest.raises(ReproError):
            server.serve(MIXED)
        with pytest.raises(ReproError):
            server.serve_iter(MIXED)
        server.close()  # idempotent

    def test_context_manager_closes_on_exit(self, database):
        with ResilienceServer(database, max_workers=2) as server:
            server.serve(MIXED)
        with pytest.raises(ReproError):
            server.serve(MIXED)

    def test_invalid_max_workers(self, database):
        with pytest.raises(ValueError):
            ResilienceServer(database, max_workers=0)

    def test_cache_and_store_are_mutually_exclusive(self, database, tmp_path):
        from repro.service import AnalysisStore

        with pytest.raises(ValueError):
            ResilienceServer(
                database, cache=LanguageCache(), store=AnalysisStore(tmp_path)
            )

    def test_explicit_database_must_match_the_warm_one(self, server, database):
        other = generators.random_labelled_graph(6, 16, "ab", seed=7)
        with pytest.raises(ReproError):
            server.serve(MIXED, database=other)
        # Same content in a different instance is fine (the guard is semantic).
        twin = generators.random_labelled_graph(5, 14, "abcdexy", seed=3)
        assert twin is not database
        assert server.serve(MIXED, database=twin) == server.serve(MIXED)

    def test_database_fingerprints_distinguish_semantics(self, database):
        bag = database.to_bag(1)
        assert database.content_fingerprint() != bag.content_fingerprint()
        clone = generators.random_labelled_graph(5, 14, "abcdexy", seed=3)
        assert clone.content_fingerprint() == database.content_fingerprint()


class TestCrashRecovery:
    def test_crashed_worker_does_not_poison_subsequent_calls(self, database):
        # A string-keyed cache keeps the result-level layer out of the way:
        # with it on, the repeat serve would be answered from the cache and
        # (correctly) never rebuild the pool this test is about.
        with ResilienceServer(
            database, max_workers=2, cache=LanguageCache(canonical=False)
        ) as server:
            reference = server.serve(MIXED)
            pids_before = server.worker_pids()
            crash = server._pool.submit(os._exit, 1)
            with pytest.raises(Exception):
                crash.result()
            # The next call must transparently rebuild the pool and answer
            # correctly — fresh workers, same outcomes.
            recovered = server.serve(MIXED)
            assert recovered == reference
            assert server.worker_pids()
            assert server.worker_pids().isdisjoint(pids_before)

    def test_mid_serve_crash_retries_chunks_and_completes_correctly(self, database):
        # A single worker crash breaks the pool mid-call; every affected chunk
        # must be re-run once on a fresh pool, so the call still returns the
        # full, correct outcome list (errors only appear on a *second*
        # failure, which a one-off crash cannot produce).
        expected = resilience_serve(MIXED * 4, database, parallel=False)
        with ResilienceServer(database, max_workers=2) as server:
            assert {outcome.status for outcome in server.serve(MIXED)} == {OK}
            server._pool.submit(os._exit, 1)
            assert server.serve(MIXED * 4) == expected
            assert server.serve(MIXED * 4) == expected

    def test_mid_stream_crash_retries_pending_chunks(self, database):
        expected = resilience_serve(MIXED * 8, database, parallel=False)
        with ResilienceServer(database, max_workers=2) as server:
            iterator = server.serve_iter(MIXED * 8)
            first = next(iterator)
            server._pool.submit(os._exit, 1)
            outcomes = sorted([first, *iterator], key=lambda outcome: outcome.index)
            assert outcomes == expected

    def test_lost_wakeup_nudge_is_harmless_in_every_pool_state(self, database):
        # _stream re-pokes the pool's management thread whenever a wait times
        # out (the CPython < 3.12 lost-wakeup workaround); the poke must be a
        # no-op on a healthy pool, a shut-down pool, and no pool at all.
        from repro.service.server import _nudge_pool

        _nudge_pool(None)
        with ResilienceServer(database, max_workers=2) as server:
            reference = server.serve(MIXED)
            _nudge_pool(server._pool)
            assert server.serve(MIXED) == reference
            pool = server._pool
        _nudge_pool(pool)  # closed server: pool already shut down


class TestWorkerInterning:
    def test_equivalent_languages_intern_to_one_instance(self, database):
        _WORKER_LANGUAGES.clear()
        workload = Workload.coerce(["(ab)*a", "a(ba)*", "(ab)*a"])
        scheduled, failed = plan_workload(workload, LanguageCache())
        assert not failed
        try:
            interned = [_intern_scheduled(item) for item in scheduled]
            shared = {id(item.language._infix_free) for item in interned}
            assert len(shared) == 1, "one intern entry per equivalence class"
            assert len(_WORKER_LANGUAGES) == 1
            by_index = {item.index: item for item in interned}
            assert by_index[1].language.name == "a(ba)*"  # display names survive
        finally:
            _WORKER_LANGUAGES.clear()

    def test_intern_keys_come_from_canonical_fingerprints(self):
        workload = Workload.coerce(["(ab)*a", "a(ba)*", QuerySpec(42)])
        scheduled, failed = plan_workload(workload, LanguageCache())
        keys = {item.index: item.intern_key for item in scheduled}
        assert keys[0] == keys[1]
        assert keys[0].startswith("fp:")
        assert [outcome.index for outcome in failed] == [2]

    def test_string_cache_falls_back_to_expression_keys(self):
        workload = Workload.coerce(["(ab)*a", "a(ba)*"])
        scheduled, _ = plan_workload(workload, LanguageCache(canonical=False))
        keys = {item.index: item.intern_key for item in scheduled}
        assert keys[0] == "re:(ab)*a"
        assert keys[1] == "re:a(ba)*"
        assert keys[0] != keys[1]
