"""Runtime leak sanitizer: no thread, process, socket, or temp dir survives a test.

The static pass in ``repro.analysis`` checks what the serving stack's
code *says*; this tracker checks what it *does*.  A
:class:`LeakTracker` snapshots the live threads and child processes
when a test starts, patches ``socket.socket`` and ``tempfile.mkdtemp``
to record everything created during the test, and at teardown insists
the world returned to its starting shape — after a settle window, since
daemon scatter threads and executor teardown race the test's epilogue
by design.

Wired into ``tests/conftest.py`` for the suites that exercise real
pools, threads, and HTTP servers (``test_server``, ``test_async_server``,
``test_exchange``, ``test_traffic``).  The chaos soak harness also brackets
whole soak runs with a :class:`LeakTracker` directly (``SoakRunner``'s
``leak_tracker`` argument).  Set ``REPRO_LEAK_SANITIZER=off`` to disable.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import tempfile
import threading
import time
import weakref

#: Suites the sanitizer guards (module basenames, no extension).
SANITIZED_MODULES = frozenset(
    {"test_server", "test_async_server", "test_exchange", "test_traffic"}
)

#: Seconds to wait for the world to settle before declaring a leak.
SETTLE_SECONDS = 5.0


def sanitizer_enabled() -> bool:
    return os.environ.get("REPRO_LEAK_SANITIZER", "").lower() not in {
        "off",
        "0",
        "false",
    }


class LeakTracker:
    """Snapshot-and-diff resource tracker for one test."""

    def __init__(self, *, settle: float = SETTLE_SECONDS) -> None:
        self._settle = settle
        self._threads_before: set[int] = set()
        self._children_before: set[int] = set()
        self._sockets: list[weakref.ref] = []
        self._tempdirs: list[str] = []
        self._real_socket = None
        self._real_mkdtemp = None

    # ----------------------------------------------------------------- window

    def start(self) -> None:
        self._threads_before = {
            thread.ident for thread in threading.enumerate()
        }
        self._children_before = {
            process.pid for process in multiprocessing.active_children()
        }
        tracker = self
        real_socket = socket.socket

        class _TrackedSocket(real_socket):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                tracker._sockets.append(weakref.ref(self))

        real_mkdtemp = tempfile.mkdtemp

        def _tracked_mkdtemp(*args, **kwargs):
            path = real_mkdtemp(*args, **kwargs)
            tracker._tempdirs.append(path)
            return path

        self._real_socket = real_socket
        self._real_mkdtemp = real_mkdtemp
        socket.socket = _TrackedSocket
        tempfile.mkdtemp = _tracked_mkdtemp

    def stop(self) -> None:
        if self._real_socket is not None:
            socket.socket = self._real_socket
            self._real_socket = None
        if self._real_mkdtemp is not None:
            tempfile.mkdtemp = self._real_mkdtemp
            self._real_mkdtemp = None

    # ------------------------------------------------------------------ diffs

    def _leaked_threads(self) -> list[threading.Thread]:
        return [
            thread
            for thread in threading.enumerate()
            if thread.ident not in self._threads_before and thread.is_alive()
        ]

    def _leaked_children(self) -> list[multiprocessing.process.BaseProcess]:
        return [
            process
            for process in multiprocessing.active_children()
            if process.pid not in self._children_before and process.is_alive()
        ]

    def _leaked_sockets(self) -> list[socket.socket]:
        out = []
        for ref in self._sockets:
            sock = ref()
            if sock is not None and sock.fileno() != -1:
                out.append(sock)
        return out

    def _leaked_tempdirs(self) -> list[str]:
        return [path for path in self._tempdirs if os.path.exists(path)]

    def _dirty(self) -> bool:
        return bool(
            self._leaked_threads()
            or self._leaked_children()
            or self._leaked_sockets()
            or self._leaked_tempdirs()
        )

    # ----------------------------------------------------------------- report

    def leaks(self) -> list[str]:
        """Human-readable leak descriptions after the settle window."""
        deadline = time.monotonic() + self._settle
        while self._dirty() and time.monotonic() < deadline:
            time.sleep(0.05)
        out: list[str] = []
        for thread in self._leaked_threads():
            out.append(
                f"thread leaked: {thread.name!r} (daemon={thread.daemon})"
            )
        for process in self._leaked_children():
            out.append(
                f"child process leaked: pid={process.pid} name={process.name!r}"
            )
        for sock in self._leaked_sockets():
            out.append(f"socket leaked: fd={sock.fileno()}")
        for path in self._leaked_tempdirs():
            out.append(f"temp dir leaked: {path}")
        return out
