"""Unit tests for the runtime leak tracker behind the sanitizer hooks."""

from __future__ import annotations

import shutil
import socket
import tempfile
import threading

from leak_sanitizer import LeakTracker, SANITIZED_MODULES


def test_sanitized_suites_are_the_resourceful_ones():
    assert SANITIZED_MODULES == {
        "test_server",
        "test_async_server",
        "test_exchange",
        "test_traffic",
    }


def test_detects_leaked_thread():
    tracker = LeakTracker(settle=0.2)
    tracker.start()
    release = threading.Event()
    thread = threading.Thread(target=release.wait, name="leaky-thread")
    thread.start()
    tracker.stop()
    try:
        leaks = tracker.leaks()
        assert any("leaky-thread" in leak for leak in leaks)
    finally:
        release.set()
        thread.join()


def test_joined_thread_is_clean():
    tracker = LeakTracker(settle=0.2)
    tracker.start()
    thread = threading.Thread(target=lambda: None)
    thread.start()
    thread.join()
    tracker.stop()
    assert tracker.leaks() == []


def test_settle_window_tolerates_racing_exit():
    tracker = LeakTracker(settle=5.0)
    tracker.start()
    thread = threading.Thread(target=lambda: threading.Event().wait(0.2))
    thread.start()
    tracker.stop()
    # Not joined: the settle poll must absorb the straggler on its own.
    assert tracker.leaks() == []
    thread.join()


def test_detects_leaked_socket_then_clean_after_close():
    tracker = LeakTracker(settle=0.1)
    tracker.start()
    sock = socket.socket()
    tracker.stop()
    try:
        assert any("socket leaked" in leak for leak in tracker.leaks())
    finally:
        sock.close()
    assert tracker.leaks() == []


def test_detects_leaked_tempdir_then_clean_after_removal():
    tracker = LeakTracker(settle=0.1)
    tracker.start()
    path = tempfile.mkdtemp(prefix="repro-leak-test-")
    tracker.stop()
    try:
        assert any(path in leak for leak in tracker.leaks())
    finally:
        shutil.rmtree(path)
    assert tracker.leaks() == []


def test_pre_existing_resources_are_not_leaks():
    release = threading.Event()
    thread = threading.Thread(target=release.wait, name="pre-existing")
    thread.start()
    try:
        tracker = LeakTracker(settle=0.2)
        tracker.start()
        tracker.stop()
        assert tracker.leaks() == []
    finally:
        release.set()
        thread.join()


def test_patching_is_restored():
    tracker = LeakTracker()
    original_socket = socket.socket
    original_mkdtemp = tempfile.mkdtemp
    tracker.start()
    assert socket.socket is not original_socket
    tracker.stop()
    assert socket.socket is original_socket
    assert tempfile.mkdtemp is original_mkdtemp
