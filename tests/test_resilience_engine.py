"""Tests for the resilience dispatcher."""

import pytest

from repro.exceptions import ReproError
from repro.graphdb import GraphDatabase, generators
from repro.languages import Language
from repro.resilience import (
    choose_method,
    resilience,
    resilience_exact,
    resilience_many,
    verify_contingency_set,
)
from repro.rpq import RPQ


class TestMethodSelection:
    @pytest.mark.parametrize(
        "expression, expected",
        [
            ("ax*b", "local-flow"),
            ("ab|ad|cd", "local-flow"),
            ("a|aa", "local-flow"),
            ("ab|bc", "bcl-flow"),
            ("axb|byc", "bcl-flow"),
            ("abc|be", "one-dangling-flow"),
            ("ax*b|xd", "one-dangling-flow"),
            ("aa", "exact"),
            ("axb|cxd", "exact"),
            ("abc|bcd", "exact"),
            ("ε|a", "trivial-epsilon"),
        ],
    )
    def test_choose_method(self, expression, expected):
        assert choose_method(Language.from_regex(expression)) == expected


class TestDispatch:
    def test_accepts_string_language_and_rpq(self):
        database = GraphDatabase.from_edges([("s", "a", "u"), ("u", "b", "t")])
        for query in ["ab", Language.from_regex("ab"), RPQ.from_regex("ab")]:
            assert resilience(query, database).value == 1

    def test_flow_methods_match_exact_on_mixed_suite(self):
        suite = ["ax*b", "ab|bc", "abc|be", "ab|ad|cd"]
        for expression in suite:
            language = Language.from_regex(expression)
            alphabet = "".join(sorted(language.alphabet))
            for seed in range(3):
                database = generators.random_labelled_graph(5, 10, alphabet, seed=seed)
                result = resilience(language, database)
                exact = resilience_exact(language, database)
                assert result.value == exact.value, (expression, seed)
                assert result.method != "exact", expression
                assert verify_contingency_set(language, database, result)

    def test_method_override(self):
        database = GraphDatabase.from_edges([("s", "a", "u"), ("u", "b", "t")])
        forced = resilience("ab", database, method="exact")
        assert forced.method == "exact"
        assert forced.value == 1

    def test_hard_language_falls_back_to_exact(self):
        database = generators.random_labelled_graph(4, 8, "a", seed=0)
        result = resilience("aa", database)
        assert result.method == "exact"
        assert verify_contingency_set("aa", database, result)

    def test_epsilon_query(self):
        database = GraphDatabase.from_edges([("s", "a", "u")])
        result = resilience("ε|a", database)
        assert result.is_infinite
        assert result.method == "trivial-epsilon"

    def test_semantics_reporting(self):
        database = GraphDatabase.from_edges([("s", "a", "u"), ("u", "b", "t")])
        assert resilience("ab", database).semantics == "set"
        assert resilience("ab", database.to_bag(3)).semantics == "bag"
        assert resilience("ab", database.to_bag(3)).value == 3

    def test_infix_free_computed_exactly_once(self):
        # Regression: the seed computed language.infix_free() twice per call
        # (once in choose_method, once in resilience).
        database = GraphDatabase.from_edges([("s", "a", "u"), ("u", "b", "t")])
        language = Language.from_regex("ab|bc")
        calls = []
        original = Language.infix_free

        def counting_infix_free(self):
            calls.append(self)
            return original(self)

        Language.infix_free = counting_infix_free
        try:
            result = resilience(language, database)
        finally:
            Language.infix_free = original
        assert result.value == 1
        assert len(calls) == 1

    def test_query_name_preserved_without_mutation(self):
        # Regression: the seed renamed the infix-free language in place; the
        # engine must report under the original name without any mutation.
        database = GraphDatabase.from_edges([("s", "a", "u"), ("u", "b", "t")])
        language = Language.from_regex("ab|bc")
        infix_free = language.infix_free()
        original_name = infix_free.name
        result = resilience(language, database)
        assert result.query == "ab|bc"
        assert language.infix_free().name == original_name


class TestVerifyContingencySet:
    def test_foreign_fact_returns_false_in_set_semantics(self):
        # Regression: a contingency set containing a fact absent from the
        # database must be rejected, not crash.
        from repro.graphdb import Fact
        from repro.resilience import ResilienceResult

        database = GraphDatabase.from_edges([("s", "a", "u"), ("u", "b", "t")])
        foreign = frozenset({Fact("nowhere", "a", "else")})
        result = ResilienceResult(1.0, foreign, "set", "exact", "ab")
        assert verify_contingency_set("ab", database, result) is False

    def test_foreign_fact_returns_false_in_bag_semantics(self):
        # Regression: the bag-semantics total_cost lookup raised KeyError here.
        from repro.graphdb import Fact
        from repro.resilience import ResilienceResult

        database = GraphDatabase.from_edges([("s", "a", "u"), ("u", "b", "t")]).to_bag(2)
        foreign = frozenset({Fact("s", "a", "u"), Fact("nowhere", "a", "else")})
        result = ResilienceResult(2.0, foreign, "bag", "exact", "ab")
        assert verify_contingency_set("ab", database, result) is False

    def test_genuine_contingency_set_still_verifies(self):
        database = GraphDatabase.from_edges([("s", "a", "u"), ("u", "b", "t")])
        result = resilience("ab", database)
        assert verify_contingency_set("ab", database, result) is True


class TestForcedMethodValidation:
    def test_forced_inapplicable_method_raises(self):
        database = generators.random_labelled_graph(4, 8, "a", seed=0)
        with pytest.raises(ReproError):
            resilience("aa", database, method="local-flow")

    def test_forced_inapplicable_bcl_raises(self):
        database = generators.random_labelled_graph(4, 8, "a", seed=0)
        with pytest.raises(ReproError):
            resilience("aa", database, method="bcl-flow")

    def test_unknown_method_raises_value_error(self):
        database = GraphDatabase.from_edges([("s", "a", "u")])
        with pytest.raises(ValueError):
            resilience("ab", database, method="no-such-method")

    def test_unknown_method_rejected_even_for_epsilon_languages(self):
        # Regression: the epsilon short-circuit must not swallow a method typo.
        database = GraphDatabase.from_edges([("s", "a", "u")])
        with pytest.raises(ValueError):
            resilience("a*", database, method="no-such-method")

    def test_forced_method_on_epsilon_language_reports_infinite(self):
        # A known forced method on an epsilon language short-circuits to the
        # (correct whatever the algorithm) infinite result.
        database = GraphDatabase.from_edges([("s", "a", "u")])
        result = resilience("a*", database, method="exact")
        assert result.is_infinite
        assert result.method == "trivial-epsilon"

    def test_unsafe_escape_hatch_runs_unchecked(self):
        # "aa" is not local; unsafe=True runs the reduction on the local
        # overapproximation anyway (combined-complexity semantics) instead of
        # raising.  The returned value is an underapproximation-of-soundness
        # trade the caller explicitly opted into.
        database = generators.random_labelled_graph(4, 8, "a", seed=0)
        result = resilience("aa", database, method="local-flow", unsafe=True)
        assert result.method == "local-flow"
        assert result.value >= 0

    def test_forced_applicable_method_still_works(self):
        database = GraphDatabase.from_edges([("s", "a", "u"), ("u", "b", "t")])
        forced = resilience("ab", database, method="local-flow")
        assert forced.method == "local-flow"
        assert forced.value == 1


class TestResilienceMany:
    def test_matches_individual_calls(self):
        database = generators.random_labelled_graph(5, 10, "abcex", seed=1)
        queries = ["ax*b", "ab|bc", "abc|be", "aa", "ab"]
        batched = resilience_many(queries, database)
        assert len(batched) == len(queries)
        for query, result in zip(queries, batched):
            single = resilience(query, database)
            assert result.value == single.value, query
            assert result.method == single.method, query
            assert result.query == query

    def test_shares_one_database_index(self):
        database = generators.random_labelled_graph(5, 10, "ab", seed=2)
        resilience_many(["ab", "aa"], database)
        # The index was built once and cached on the database instance.
        assert database.index() is database.index()

    def test_empty_query_list(self):
        database = GraphDatabase.from_edges([("s", "a", "u")])
        assert resilience_many([], database) == []
