"""Tests for the resilience dispatcher."""

import pytest

from repro.graphdb import GraphDatabase, generators
from repro.languages import Language
from repro.resilience import choose_method, resilience, resilience_exact, verify_contingency_set
from repro.rpq import RPQ


class TestMethodSelection:
    @pytest.mark.parametrize(
        "expression, expected",
        [
            ("ax*b", "local-flow"),
            ("ab|ad|cd", "local-flow"),
            ("a|aa", "local-flow"),
            ("ab|bc", "bcl-flow"),
            ("axb|byc", "bcl-flow"),
            ("abc|be", "one-dangling-flow"),
            ("ax*b|xd", "one-dangling-flow"),
            ("aa", "exact"),
            ("axb|cxd", "exact"),
            ("abc|bcd", "exact"),
            ("ε|a", "trivial-epsilon"),
        ],
    )
    def test_choose_method(self, expression, expected):
        assert choose_method(Language.from_regex(expression)) == expected


class TestDispatch:
    def test_accepts_string_language_and_rpq(self):
        database = GraphDatabase.from_edges([("s", "a", "u"), ("u", "b", "t")])
        for query in ["ab", Language.from_regex("ab"), RPQ.from_regex("ab")]:
            assert resilience(query, database).value == 1

    def test_flow_methods_match_exact_on_mixed_suite(self):
        suite = ["ax*b", "ab|bc", "abc|be", "ab|ad|cd"]
        for expression in suite:
            language = Language.from_regex(expression)
            alphabet = "".join(sorted(language.alphabet))
            for seed in range(3):
                database = generators.random_labelled_graph(5, 10, alphabet, seed=seed)
                result = resilience(language, database)
                exact = resilience_exact(language, database)
                assert result.value == exact.value, (expression, seed)
                assert result.method != "exact", expression
                assert verify_contingency_set(language, database, result)

    def test_method_override(self):
        database = GraphDatabase.from_edges([("s", "a", "u"), ("u", "b", "t")])
        forced = resilience("ab", database, method="exact")
        assert forced.method == "exact"
        assert forced.value == 1

    def test_hard_language_falls_back_to_exact(self):
        database = generators.random_labelled_graph(4, 8, "a", seed=0)
        result = resilience("aa", database)
        assert result.method == "exact"
        assert verify_contingency_set("aa", database, result)

    def test_epsilon_query(self):
        database = GraphDatabase.from_edges([("s", "a", "u")])
        result = resilience("ε|a", database)
        assert result.is_infinite
        assert result.method == "trivial-epsilon"

    def test_semantics_reporting(self):
        database = GraphDatabase.from_edges([("s", "a", "u"), ("u", "b", "t")])
        assert resilience("ab", database).semantics == "set"
        assert resilience("ab", database.to_bag(3)).semantics == "bag"
        assert resilience("ab", database.to_bag(3)).value == 3
