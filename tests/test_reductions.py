"""End-to-end validation of the vertex-cover reduction (Proposition 4.11)."""

import pytest

from repro.graphdb import generators
from repro.hardness import build_reduction, check_reduction
from repro.hardness.library import gadget_for_aa, gadget_for_ab_bc_ca, gadget_for_aab
from repro.languages import Language
from repro.resilience import resilience_exact


class TestReductionPredictions:
    def test_aa_on_triangle(self):
        # Proposition 4.1 on the triangle: vc = 2, 3 edges, path length 5.
        instance = build_reduction(Language.from_regex("aa"), gadget_for_aa(), generators.cycle_graph(3))
        assert instance.vertex_cover_number == 2
        assert instance.subdivision_length == 5
        assert instance.predicted_resilience == 2 + 3 * 2
        assert check_reduction(instance)

    def test_aa_on_single_edge(self):
        instance = build_reduction(Language.from_regex("aa"), gadget_for_aa(), [(0, 1)])
        assert instance.predicted_resilience == 1 + 2
        assert check_reduction(instance)

    def test_aa_on_random_graphs(self):
        for seed in range(3):
            edges = generators.random_undirected_graph(4, 0.5, seed=seed)
            if not edges:
                continue
            instance = build_reduction(Language.from_regex("aa"), gadget_for_aa(), edges)
            assert check_reduction(instance), seed

    def test_ab_bc_ca_on_path_graph(self):
        instance = build_reduction(
            Language.from_regex("ab|bc|ca"), gadget_for_ab_bc_ca(), [(0, 1), (1, 2)]
        )
        assert instance.subdivision_length == 7
        assert instance.vertex_cover_number == 1
        assert check_reduction(instance)

    def test_aab_on_triangle(self):
        instance = build_reduction(Language.from_regex("aab"), gadget_for_aab(), generators.cycle_graph(3))
        assert instance.subdivision_length == 3
        assert check_reduction(instance)

    def test_resilience_grows_with_vertex_cover(self):
        # Bigger graphs have bigger encodings and bigger resilience.
        small = build_reduction(Language.from_regex("aa"), gadget_for_aa(), [(0, 1)])
        large = build_reduction(Language.from_regex("aa"), gadget_for_aa(), generators.cycle_graph(4))
        assert large.predicted_resilience > small.predicted_resilience

    def test_encoding_database_is_reused_directly(self):
        instance = build_reduction(Language.from_regex("aa"), gadget_for_aa(), [(0, 1), (1, 2)])
        result = resilience_exact(Language.from_regex("aa"), instance.encoding, semantics="set")
        assert result.value == instance.predicted_resilience


class TestBudgetHandling:
    def test_budget_overrun_is_inconclusive_not_crash(self):
        # Regression: the node guard used to surface as a bare RuntimeError out
        # of check_reduction; now exactly SearchBudgetExceeded is caught and
        # the check reports "not confirmed", warning with the budget
        # diagnostics so the failure is distinguishable from a refutation.
        instance = build_reduction(Language.from_regex("aa"), gadget_for_aa(), generators.cycle_graph(3))
        with pytest.warns(RuntimeWarning, match="inconclusive"):
            assert check_reduction(instance, max_nodes=1) is False

    def test_unrelated_errors_still_propagate(self, monkeypatch):
        from repro.hardness import reductions

        instance = build_reduction(Language.from_regex("aa"), gadget_for_aa(), [(0, 1)])

        def boom(*args, **kwargs):
            raise RuntimeError("unrelated failure")

        monkeypatch.setattr(reductions, "resilience_exact", boom)
        with pytest.raises(RuntimeError, match="unrelated failure"):
            check_reduction(instance)
