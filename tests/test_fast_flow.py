"""Differential suite for the array-native flow core.

Pins three claims:

* :func:`~repro.flow.compiled.fast_min_cut` is a drop-in for the reference
  :func:`~repro.flow.mincut.min_cut` — on exact-arithmetic networks (ints and
  dyadic fractions) the whole :class:`~repro.flow.mincut.MinCutResult` is
  equal field for field, and on every network the returned cut is a *verified*
  minimum cut (it disconnects, and its cost certifies minimality against the
  max flow);
* the substrate compilers emit graphs whose solutions match both the retained
  object-network builders and the reference solver mode, byte for byte where
  it matters (values, cut facts, details);
* substrates are built once per database and shared across queries.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow import (
    INFINITY,
    FlowNetwork,
    bcl_substrate,
    compile_bcl_graph,
    compile_network,
    compile_product_graph,
    fast_min_cut,
    min_cut,
    min_cut_compiled,
    product_substrate,
    solve_min_cut,
)
from repro.graphdb import GraphDatabase, generators
from repro.languages import Language, chain, read_once
from repro.resilience import (
    resilience,
    resilience_bcl,
    resilience_local,
    resilience_many,
    resilience_one_dangling,
    verify_contingency_set,
)
from repro.resilience.bcl_flow import build_bcl_network
from repro.resilience.local_flow import build_product_network


# Dyadic fractions add and subtract exactly in binary floating point, so the
# fast and reference solvers do identical arithmetic on them — genuinely
# fractional capacities without float-rounding nondeterminism.
_CAPACITIES = st.one_of(
    st.integers(min_value=0, max_value=7),
    st.just(INFINITY),
    st.sampled_from([0.25, 0.5, 0.75, 1.5, 2.25, 3.75]),
)


@st.composite
def networks(draw):
    """Random networks: ∞/zero/fractional capacities, parallel edges, possibly
    disconnected source/target (nodes 0 and 1)."""
    num_nodes = draw(st.integers(min_value=2, max_value=7))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_nodes - 1),
                st.integers(0, num_nodes - 1),
                _CAPACITIES,
            ),
            max_size=22,
        )
    )
    network = FlowNetwork(source=0, target=1)
    for key, (source, target, capacity) in enumerate(edges):
        network.add_edge(source, target, capacity, key=key)
    return network


class TestFastMinCutDifferential:
    @settings(max_examples=250, deadline=None)
    @given(networks())
    def test_equals_reference_and_cut_is_verified_minimum(self, network):
        reference = min_cut(network)
        fast = fast_min_cut(network)
        assert fast.value == reference.value
        if reference.value == INFINITY:
            assert fast.cut_edges == ()
            return
        # Exact arithmetic → the residual-reachable cut is canonical: the two
        # solvers agree on every field, including cut edge order.
        assert fast == reference
        for result in (fast, reference):
            assert network.is_cut(result.cut_edges)
            # Weak duality: a cut whose cost equals the max flow is minimum.
            assert network.cost(result.cut_edges) == result.max_flow == result.value

    @settings(max_examples=60, deadline=None)
    @given(networks())
    def test_compiled_graph_round_trips_through_to_network(self, network):
        graph, _ = compile_network(network)
        back = graph.to_network()
        assert min_cut(back).value == min_cut(network).value

    def test_source_equals_target(self):
        network = FlowNetwork(source="s", target="s")
        network.add_edge("s", "u", 3)
        assert fast_min_cut(network) == min_cut(network)
        assert fast_min_cut(network).value == math.inf

    def test_disconnected_target(self):
        network = FlowNetwork(source="s", target="t")
        network.add_edge("s", "u", 4)
        assert fast_min_cut(network) == min_cut(network)
        assert fast_min_cut(network).value == 0

    def test_all_infinite_path(self):
        network = FlowNetwork(source="s", target="t")
        network.add_edge("s", "m", INFINITY)
        network.add_edge("m", "t", INFINITY)
        assert fast_min_cut(network).value == math.inf

    def test_zero_capacity_edges_are_ignored(self):
        network = FlowNetwork(source="s", target="t")
        network.add_edge("s", "t", 0, key="dead")
        network.add_edge("s", "t", 2, key="live")
        result = fast_min_cut(network)
        assert result.value == 2
        assert result.cut_keys == ("live",)

    def test_parallel_edges_accumulate(self):
        network = FlowNetwork(source="s", target="t")
        network.add_edge("s", "t", 2, key="first")
        network.add_edge("s", "t", 3, key="second")
        result = fast_min_cut(network)
        assert result.value == 5
        assert set(result.cut_keys) == {"first", "second"}

    def test_integral_value_is_snapped_to_float(self):
        network = FlowNetwork(source="s", target="t")
        network.add_edge("s", "t", 7)
        value = fast_min_cut(network).value
        assert value == 7.0 and isinstance(value, float)

    def test_fractional_value_is_not_snapped(self):
        network = FlowNetwork(source="s", target="t")
        network.add_edge("s", "t", 3 + 1e-10)
        assert fast_min_cut(network).value == 3 + 1e-10


def _random_bag(seed, alphabet="axb"):
    return generators.random_bag_database(5, 12, alphabet, seed=seed, max_multiplicity=4)


class TestCompiledReductionsMatchObjectNetworks:
    """The compiled product graphs solve to the same cuts as the retained
    object-network builders (same networks, two representations)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_local_product(self, seed):
        language = Language.from_regex("ax*b")
        automaton = read_once.read_once_automaton(language)
        bag = generators.layered_flow_database(3, 3, seed=seed)
        graph = compile_product_graph(automaton, bag.index())
        compiled = min_cut_compiled(graph)
        reference = min_cut(build_product_network(automaton, bag))
        assert compiled.value == reference.value
        assert frozenset(compiled.cut_keys) == frozenset(
            edge.key for edge in reference.cut_edges if edge.key is not None
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_bcl_product(self, seed):
        language = Language.from_regex("ab|bc")
        structure = chain.bcl_structure(language)
        bag = _random_bag(seed, alphabet="abc")
        graph = compile_bcl_graph(structure, bag.index())
        compiled = min_cut_compiled(graph)
        reference = min_cut(build_bcl_network(structure, bag))
        assert compiled.value == reference.value
        assert frozenset(compiled.cut_keys) == frozenset(
            edge.key for edge in reference.cut_edges if edge.key is not None
        )

    @pytest.mark.parametrize("expression", ["ax*b", "ab|bc", "abc|be"])
    @pytest.mark.parametrize("seed", range(4))
    def test_fast_and_reference_solver_results_are_identical(
        self, expression, seed, monkeypatch
    ):
        database = generators.random_labelled_graph(5, 12, "abcxe", seed=seed)
        fast = resilience(expression, database)
        monkeypatch.setenv("REPRO_FLOW_SOLVER", "reference")
        reference = resilience(expression, database)
        assert fast == reference

    @pytest.mark.parametrize("solver", ["fast", "reference"])
    @pytest.mark.parametrize("seed", range(4))
    def test_local_solver_modes_agree_with_exact(self, solver, seed):
        language = Language.from_regex("ax*b")
        database = generators.random_labelled_graph(5, 10, "axb", seed=seed)
        result = resilience_local(language, database, solver=solver)
        assert verify_contingency_set(language, database, result)
        assert result == resilience_local(language, database, solver="fast")

    @pytest.mark.parametrize("solver", ["fast", "reference"])
    def test_bcl_solver_modes_agree(self, solver):
        language = Language.from_regex("ab|bc|b")
        for seed in range(4):
            bag = _random_bag(seed, alphabet="abc")
            result = resilience_bcl(language, bag, solver=solver)
            assert result == resilience_bcl(language, bag, solver="fast")
            assert verify_contingency_set(language, bag, result)

    @pytest.mark.parametrize("solver", ["fast", "reference"])
    def test_one_dangling_solver_modes_agree(self, solver):
        language = Language.from_regex("abc|be")
        for seed in range(4):
            bag = _random_bag(seed, alphabet="abce")
            result = resilience_one_dangling(language, bag, solver=solver)
            assert result == resilience_one_dangling(language, bag, solver="fast")
            assert verify_contingency_set(language, bag, result)

    def test_solver_env_override(self, monkeypatch):
        from repro.exceptions import ReproError
        from repro.flow import default_flow_solver

        monkeypatch.setenv("REPRO_FLOW_SOLVER", "reference")
        assert default_flow_solver() == "reference"
        monkeypatch.setenv("REPRO_FLOW_SOLVER", "bogus")
        with pytest.raises(ReproError):
            default_flow_solver()
        monkeypatch.delenv("REPRO_FLOW_SOLVER")
        assert default_flow_solver() == "fast"


class TestSubstrateReuse:
    def test_product_substrate_is_cached_on_the_index(self):
        bag = generators.layered_flow_database(3, 3, seed=1)
        index = bag.index()
        assert product_substrate(index) is product_substrate(index)
        assert bag.index() is index  # the substrate lives as long as the index

    def test_bcl_substrate_memoizes_letter_pairs(self):
        bag = _random_bag(0, alphabet="abc")
        substrate = bcl_substrate(bag.index())
        first = substrate.pair_arcs("a", "b")
        assert substrate.pair_arcs("a", "b") is first
        assert substrate.memoized_pairs == 1

    def test_two_queries_share_one_substrate_and_match_uncached_results(self):
        database = generators.random_labelled_graph(5, 12, "axbe", seed=2)
        shared = resilience_many(["ax*b", "ax*b|ax*e", "ax*b"], database)

        index = database.unit_bag().index()
        substrate = product_substrate(index)
        assert len(index.substrates) == 1
        # Three flow queries, two distinct classes: the substrate was built
        # once; the repeat class hit the compiled-graph cache (or, above it,
        # the result cache — either way, no rebuild).
        assert substrate.graphs_compiled >= 1
        assert substrate.graphs_compiled + substrate.graph_hits >= 2

        # Fresh, uncached databases (equal content) give identical outcomes.
        for query, result in zip(["ax*b", "ax*b|ax*e", "ax*b"], shared):
            fresh = generators.random_labelled_graph(5, 12, "axbe", seed=2)
            assert resilience(query, fresh) == result

    def test_repeated_query_class_hits_the_compiled_graph_cache(self):
        bag = generators.layered_flow_database(3, 3, seed=5)
        language = Language.from_regex("ax*b")
        first = resilience_local(language, bag)
        substrate = product_substrate(bag.index())
        compiled_before = substrate.graphs_compiled
        second = resilience_local(language, bag)
        assert second == first
        assert substrate.graphs_compiled == compiled_before
        assert substrate.graph_hits >= 1

    def test_trim_preserves_values_and_cut_facts(self):
        # The compiled graph is trimmed to its useful core; the object network
        # is not.  Values and cut facts must nevertheless coincide.
        language = Language.from_regex("ax*b")
        automaton = read_once.read_once_automaton(language)
        for seed in range(5):
            database = generators.random_labelled_graph(6, 14, "axbz", seed=seed)
            bag = database.unit_bag()
            graph = compile_product_graph(automaton, bag.index())
            compiled = min_cut_compiled(graph)
            reference = min_cut(build_product_network(automaton, bag))
            assert compiled.value == reference.value, seed
            assert frozenset(compiled.cut_keys) == frozenset(
                edge.key for edge in reference.cut_edges if edge.key is not None
            ), seed

    def test_solver_modes_share_the_compiled_graph(self):
        bag = generators.layered_flow_database(3, 3, seed=7)
        language = Language.from_regex("ax*b")
        automaton = read_once.read_once_automaton(language)
        graph = compile_product_graph(automaton, bag.index())
        fast = solve_min_cut(graph, solver="fast")
        reference = solve_min_cut(graph, solver="reference")
        assert fast.value == reference.value
        assert fast.cut_edges == reference.cut_edges
        assert fast.cut_keys == reference.cut_keys
