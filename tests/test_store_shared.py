"""Tests for the shared on-disk store tier: ``ResultStore``, compaction, and
multi-process torture over one shared directory.

The stores are the cross-process layer of the cache tier: atomic writes,
validate-on-read with evict-on-detection, and size/age-bounded compaction must
hold up when several processes warm, read and compact the same directory at
once — no torn reads, no invalid entries served, stats consistent.
"""

import os
import pickle
import random
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.graphdb import generators
from repro.languages.core import Language
from repro.resilience import (
    AnalysisStore,
    LanguageCache,
    ResultStore,
    choose_method,
    resilience,
)
from repro.service.warm import warm_queries, warm_trace
from repro.service.workload import QuerySpec
from repro.traffic.generator import TrafficProfile, generate_traffic

EXPRESSIONS = ["ab", "ba", "aa", "ax*b", "ab|ba", "xy", "(ab)*a", "bb"]


@pytest.fixture
def database():
    return generators.random_labelled_graph(5, 14, "abxy", seed=3)


class TestResultStore:
    def result_key(self, cache, language, database):
        return (
            language.fingerprint(),
            database.content_fingerprint(),
            "set",
            None,
            False,
        )

    def test_round_trip_preserves_the_result_exactly(self, tmp_path, database):
        cache = LanguageCache()
        language = cache.language("ax*b")
        result = resilience(language, database)
        store = ResultStore(tmp_path)
        key = self.result_key(cache, language, database)
        store.put(key, result)
        loaded = ResultStore(tmp_path).get(key)
        assert loaded == result
        assert loaded.contingency_set == result.contingency_set

    def test_corrupt_entry_is_ignored_and_evicted(self, tmp_path, database):
        cache = LanguageCache()
        language = cache.language("ab")
        store = ResultStore(tmp_path)
        key = self.result_key(cache, language, database)
        store.put(key, resilience(language, database))
        [path] = list(tmp_path.glob("*.result"))
        path.write_bytes(b"\x00poison")
        reader = ResultStore(tmp_path)
        assert reader.get(key) is None
        assert reader.stats().ignored == 1
        assert reader.stats().evictions == 1
        assert not path.exists()

    def test_stale_salt_is_ignored_and_evicted(self, tmp_path, database):
        cache = LanguageCache()
        language = cache.language("ab")
        key = self.result_key(cache, language, database)
        stale = ResultStore(tmp_path, salt="0123456789abcdef")
        stale.put(key, resilience(language, database))
        current = ResultStore(tmp_path)
        assert current.get(key) is None
        assert current.stats().ignored == 1
        assert len(current) == 0

    def test_mismatched_key_inside_envelope_is_a_miss(self, tmp_path, database):
        cache = LanguageCache()
        language = cache.language("ab")
        store = ResultStore(tmp_path)
        key = self.result_key(cache, language, database)
        store.put(key, resilience(language, database))
        [path] = list(tmp_path.glob("*.result"))
        envelope = pickle.loads(path.read_bytes())
        envelope["key"] = ("someone", "else", "set", None, False)
        path.write_bytes(pickle.dumps(envelope))
        reader = ResultStore(tmp_path)
        assert reader.get(key) is None
        assert reader.stats().ignored == 1

    def test_cache_writes_through_and_reads_back(self, tmp_path, database):
        writer = LanguageCache(result_store=ResultStore(tmp_path))
        language = writer.language("ax*b")
        result = resilience(language, database)
        writer.store_result(language, database, result)
        # A different process (fresh cache, fresh store instance) serves the
        # memoized result without computing anything.
        reader_store = ResultStore(tmp_path)
        reader = LanguageCache(result_store=reader_store)
        hit = reader.lookup_result(reader.language("ax*b"), database)
        assert hit == result.with_query("ax*b")
        assert reader_store.stats().hits == 1
        assert reader.stats.result_hits == 1

    def test_result_store_requires_canonical_layer(self, tmp_path):
        with pytest.raises(ValueError):
            LanguageCache(canonical=False, result_store=ResultStore(tmp_path))


class TestCompaction:
    def test_max_entries_drops_oldest_first(self, tmp_path):
        store = AnalysisStore(tmp_path)
        languages = [Language.from_regex(expression) for expression in EXPRESSIONS]
        for index, language in enumerate(languages):
            store.put(language.fingerprint(), method="exact", infix_free=None)
            # Distinct mtimes so age order is unambiguous on coarse clocks.
            path = tmp_path / f"{language.fingerprint()}.analysis"
            os.utime(path, (index, index))
        evicted = store.compact(max_entries=3)
        assert evicted == len(EXPRESSIONS) - 3
        assert len(store) == 3
        survivors = {path.stem for path in tmp_path.glob("*.analysis")}
        newest = {language.fingerprint() for language in languages[-3:]}
        assert survivors == newest
        assert store.stats().evictions == evicted

    def test_max_age_drops_stale_entries(self, tmp_path):
        store = AnalysisStore(tmp_path)
        language = Language.from_regex("ab")
        store.put(language.fingerprint(), method="exact", infix_free=None)
        path = tmp_path / f"{language.fingerprint()}.analysis"
        os.utime(path, (1, 1))  # 1970: ancient
        fresh = Language.from_regex("ba")
        store.put(fresh.fingerprint(), method="exact", infix_free=None)
        evicted = store.compact(max_age_seconds=3600.0)
        assert evicted == 1
        assert store.get(fresh.fingerprint()) is not None
        assert store.get(language.fingerprint()) is None

    def test_compact_without_bounds_is_a_no_op(self, tmp_path):
        store = AnalysisStore(tmp_path)
        store.put(Language.from_regex("ab").fingerprint(), method="exact", infix_free=None)
        assert store.compact() == 0
        assert len(store) == 1


# ----------------------------------------------------------- torture harness

ROUNDS = 12
WORKERS = 4


def _torture_worker(args):
    """One process of the torture: warm, read and compact a shared directory.

    Returns ``(anomalies, stats_dicts)`` — an anomaly is an invalid value
    *served* (torn read, wrong method, wrong result), never a plain miss:
    misses are legal at any time (a sibling's compaction may have evicted
    anything).
    """
    directory, worker_id, corpus = args
    rng = random.Random(worker_id)
    analyses = AnalysisStore(os.path.join(directory, "analysis"))
    results = ResultStore(os.path.join(directory, "result"))
    anomalies = []
    for round_index in range(ROUNDS):
        entries = list(corpus)
        rng.shuffle(entries)
        for fingerprint, method, infix_free, key, result in entries:
            action = rng.random()
            if action < 0.45:
                analyses.put(fingerprint, method=method, infix_free=infix_free)
                results.put(key, result)
            elif action < 0.9:
                loaded = analyses.get(fingerprint)
                if loaded is not None and loaded.method != method:
                    anomalies.append(
                        f"worker {worker_id} round {round_index}: analysis served "
                        f"{loaded.method!r}, expected {method!r}"
                    )
                replayed = results.get(key)
                if replayed is not None and replayed != result:
                    anomalies.append(
                        f"worker {worker_id} round {round_index}: result mismatch"
                    )
            else:
                analyses.compact(max_entries=len(corpus) // 2)
                results.compact(max_entries=len(corpus) // 2)
    return anomalies, (analyses.stats(), results.stats())


class TestMultiProcessTorture:
    def test_concurrent_warm_read_compact_is_safe(self, tmp_path, database):
        # Precompute the corpus once in the parent (forked workers inherit it):
        # per expression, the analysis entry and the full result entry.
        corpus = []
        for expression in EXPRESSIONS:
            language = Language.from_regex(expression)
            method = choose_method(language)
            key = (
                language.fingerprint(),
                database.content_fingerprint(),
                "set",
                None,
                False,
            )
            corpus.append(
                (language.fingerprint(), method, language._infix_free, key,
                 resilience(language, database))
            )
        jobs = [(str(tmp_path), worker_id, corpus) for worker_id in range(WORKERS)]
        with ProcessPoolExecutor(max_workers=WORKERS) as pool:
            outputs = list(pool.map(_torture_worker, jobs))

        all_anomalies = [line for anomalies, _ in outputs for line in anomalies]
        assert all_anomalies == [], "\n".join(all_anomalies)
        # Writes are atomic and nothing injected corruption, so validation
        # never ignored (or evicted-on-read) a single entry in any process.
        for _, (analysis_stats, result_stats) in outputs:
            assert analysis_stats.ignored == 0
            assert result_stats.ignored == 0
            assert analysis_stats.hits + analysis_stats.misses > 0

        # Quiescence: re-warm everything, then every key must hit — nothing
        # the torture left behind is torn or unreadable (lost entries would
        # surface as validation failures or persistent misses here).
        analyses = AnalysisStore(tmp_path / "analysis")
        results = ResultStore(tmp_path / "result")
        for fingerprint, method, infix_free, key, result in corpus:
            analyses.put(fingerprint, method=method, infix_free=infix_free)
            results.put(key, result)
        for fingerprint, method, infix_free, key, result in corpus:
            loaded = analyses.get(fingerprint)
            assert loaded is not None and loaded.method == method
            assert results.get(key) == result
        assert analyses.stats().ignored == 0
        assert results.stats().ignored == 0


# ----------------------------------------------------------------- warm pass


class TestWarmPass:
    def test_warm_queries_populates_both_stores(self, tmp_path, database):
        store = AnalysisStore(tmp_path / "analysis")
        result_store = ResultStore(tmp_path / "result")
        report = warm_queries(
            EXPRESSIONS,
            store=store,
            result_store=result_store,
            databases=[database],
        )
        assert report.queries == len(EXPRESSIONS)
        assert report.classifications > 0
        assert report.analyses_written == report.classifications
        assert report.results_computed == len(EXPRESSIONS)
        assert report.results_written == report.results_computed
        assert report.skipped == ()

    def test_warm_is_best_effort_about_bad_corpus_entries(self, tmp_path):
        store = AnalysisStore(tmp_path)
        report = warm_queries(["ab", "((", "ba"], store=store)
        assert report.queries == 3
        assert len(report.skipped) == 1
        assert "((" in report.skipped[0]

    def test_warmed_trace_serves_with_zero_classifications(self, tmp_path):
        # The acceptance observable, in-process: warm a trace's corpus, then a
        # *fresh* cache backed by the same stores serves the trace's queries
        # with zero classifications and nonzero store hits.
        from repro.traffic.soak import SoakRunner

        trace = generate_traffic(TrafficProfile(seed=13, requests=10))
        store_dir, result_dir = tmp_path / "analysis", tmp_path / "result"
        report = warm_trace(
            trace,
            store=AnalysisStore(store_dir),
            result_store=ResultStore(result_dir),
        )
        assert report.classifications > 0
        assert report.results_written > 0

        warm_store = AnalysisStore(store_dir)
        cache = LanguageCache(store=warm_store, result_store=ResultStore(result_dir))
        soak = SoakRunner(trace, nodes=2, max_workers=1, cache=cache).run()
        assert soak.cache["classifications"] == 0
        assert warm_store.stats().hits > 0
        assert cache.stats.result_hits > 0

    def test_warmed_serve_is_outcome_identical_to_cold(self, tmp_path, database):
        from repro.service import resilience_serve

        specs = [QuerySpec(expression) for expression in EXPRESSIONS]
        warm_queries(
            EXPRESSIONS,
            store=AnalysisStore(tmp_path / "a"),
            result_store=ResultStore(tmp_path / "r"),
            databases=[database],
        )
        warmed_cache = LanguageCache(
            store=AnalysisStore(tmp_path / "a"), result_store=ResultStore(tmp_path / "r")
        )
        warmed = resilience_serve(specs, database, parallel=False, cache=warmed_cache)
        reference = resilience_serve(
            specs, database, parallel=False, cache=LanguageCache(canonical=False)
        )
        assert warmed == reference
        assert warmed_cache.stats.classifications == 0

    def test_cli_main_warms_and_reports(self, tmp_path, capsys):
        import json

        from repro.service.warm import main

        code = main(
            [
                "--analysis-store", str(tmp_path / "a"),
                "--result-store", str(tmp_path / "r"),
                "--trace-seed", "3",
                "--trace-requests", "6",
                "--compact-entries", "64",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["classifications"] > 0
        assert payload["results_written"] > 0
        assert payload["skipped"] == []
        assert len(AnalysisStore(tmp_path / "a")) > 0
