"""Async front-end tests: admission control, fault injection, metrics.

Concerns the conformance suite doesn't cover:

* **admission control** — priority classes drain in order, FIFO within a
  class, depth-bounded rejection and deadline expiry produce structured
  ``admission-rejected`` outcomes, and (hypothesis) random interleavings of
  workloads lose nothing and leak nothing across iterators;
* **weighted fair shares** — a workload's round cap scales with its weight
  (``max(1, round(round_share * weight))``), per-class defaults apply, and
  (hypothesis) no positive weight can starve: every workload progresses in
  a predictable, bounded number of rounds;
* **cancellation** — a consumer cancel or an expired deadline cuts the
  unserved tail cooperatively at every check point (serial loop, chunk
  dispatch, and inside an in-flight worker chunk) with structured outcomes;
* **fault injection** — a worker crash mid-stream surfaces ``error``
  outcomes to exactly the affected workload's iterator while
  concurrently-admitted workloads are served correctly, and a closed server
  rejects ``submit`` cleanly;
* **abandonment** — a consumer that drops its outcome iterator mid-stream
  (async ``break`` or a GC'd sync generator) neither wedges later serving
  nor keeps burning pool chunks on the abandoned tail;
* **metrics** — the programmatic :class:`~repro.service.ServerMetrics`
  snapshot and the HTTP endpoint's JSON agree, the admission/cache/pool
  counters actually move, and the content-negotiated Prometheus text
  exposition parses with coherent per-node and histogram series.
"""

import asyncio
import gc
import json
import math
import time
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from faults import poison_language
from repro.exceptions import ReproError
from repro.graphdb import generators
from repro.service import (
    ADMISSION_REJECTED,
    BUDGET_EXCEEDED,
    ERROR,
    OK,
    AsyncResilienceServer,
    CacheStats,
    CancellationToken,
    LanguageCache,
    QuerySpec,
    ResilienceServer,
    ThreadExchange,
    Workload,
    resilience_serve,
)

MIXED = ["ax*b", "ab|bc", "aa", "ab", "ε|a", "abc|be"]


@pytest.fixture(scope="module")
def database():
    return generators.random_labelled_graph(5, 14, "abcdexy", seed=3)


@pytest.fixture(scope="module")
def reference(database):
    return resilience_serve(MIXED, database, parallel=False)


def sorted_outcomes(outcomes):
    return sorted(outcomes, key=lambda outcome: outcome.index)


async def collect(iterator):
    return [outcome async for outcome in iterator]


def run(coroutine):
    return asyncio.run(coroutine)


# --------------------------------------------------------------------- admission


class TestAdmission:
    def test_concurrent_workloads_share_one_warm_pool(self, database, reference):
        async def scenario():
            async with AsyncResilienceServer(
                ResilienceServer(database, max_workers=2, cache=LanguageCache(canonical=False))
            ) as server:
                iterators = [await server.submit(MIXED) for _ in range(3)]
                results = await asyncio.gather(*(collect(it) for it in iterators))
                pids = server.worker_pids()
                assert pids, "serving must have created the shared pool"
                # Round two on the same warm pool: identical answers, no re-fork.
                again = await collect(await server.submit(MIXED))
                assert server.worker_pids() == pids
                assert server.server.pool_stats().pools_created == 1
                return results + [again]

        for outcomes in run(scenario()):
            assert sorted_outcomes(outcomes) == reference

    def test_priority_classes_drain_in_order_with_fifo_within_class(self, database):
        async def scenario():
            server = AsyncResilienceServer(
                ResilienceServer(database, parallel=False), autostart=False
            )
            with server:
                order = [2, 0, 1, 0, 2, 1]
                iterators = [
                    await server.submit(MIXED[:2], priority=priority) for priority in order
                ]
                server.start()
                await asyncio.gather(*(collect(it) for it in iterators))
                return server.drain_log()

        log = run(scenario())
        priorities = [priority for priority, _ in log]
        assert priorities == sorted(priorities), "priority classes must drain in order"
        for cls in set(priorities):
            seqs = [seq for priority, seq in log if priority == cls]
            assert seqs == sorted(seqs), f"class {cls} must drain FIFO"

    def test_queue_depth_bound_rejects_structurally(self, database, reference):
        async def scenario():
            server = AsyncResilienceServer(
                ResilienceServer(database, parallel=False),
                max_queue_depth=2,
                autostart=False,
            )
            with server:
                admitted = [await server.submit(MIXED) for _ in range(2)]
                turned_away = await server.submit(MIXED, priority=5)
                rejected = await collect(turned_away)  # yields without serving
                server.start()
                served = await asyncio.gather(*(collect(it) for it in admitted))
                metrics = server.metrics()
                return rejected, served, metrics

        rejected, served, metrics = run(scenario())
        assert len(rejected) == len(MIXED)
        assert all(outcome.status == ADMISSION_REJECTED for outcome in rejected)
        assert all("AdmissionRejected" in outcome.error for outcome in rejected)
        assert [outcome.index for outcome in rejected] == list(range(len(MIXED)))
        for outcomes in served:
            assert sorted_outcomes(outcomes) == reference
        assert metrics.admission.rejected == {5: 1}
        assert sum(metrics.admission.admitted.values()) == 2

    def test_deadline_expiry_rejects_instead_of_serving_stale(self, database):
        async def scenario():
            server = AsyncResilienceServer(
                ResilienceServer(database, parallel=False), autostart=False
            )
            with server:
                expired = await server.submit(MIXED, deadline=0.0)
                fresh = await server.submit(MIXED)
                await asyncio.sleep(0.01)
                server.start()
                return (
                    await collect(expired),
                    await collect(fresh),
                    server.metrics().admission.deadline_expired,
                )

        expired, fresh, deadline_expired = run(scenario())
        assert all(outcome.status == ADMISSION_REJECTED for outcome in expired)
        assert all("deadline" in outcome.error for outcome in expired)
        assert all(outcome.ok for outcome in fresh)
        assert deadline_expired == 1

    def test_expiry_is_prompt_even_behind_higher_priority_traffic(self, database):
        # Regression: an expired low-priority workload must not wait for the
        # drain to reach its class — submit-time sweeping rejects it and
        # frees its queue-depth slot for the incoming workload.
        async def scenario():
            server = AsyncResilienceServer(
                ResilienceServer(database, parallel=False),
                max_queue_depth=1,
                autostart=False,
            )
            with server:
                stale = await server.submit(MIXED, priority=9, deadline=0.0)
                await asyncio.sleep(0.01)
                # At the depth bound — but the expired waiter must be swept,
                # admitting this one instead of rejecting it.
                fresh = await server.submit(MIXED, priority=0)
                stale_outcomes = await collect(stale)  # rejected without start()
                server.start()
                fresh_outcomes = await collect(fresh)
                return stale_outcomes, fresh_outcomes, server.metrics().admission

        stale_outcomes, fresh_outcomes, admission = run(scenario())
        assert all(
            outcome.status == ADMISSION_REJECTED and "deadline" in outcome.error
            for outcome in stale_outcomes
        )
        assert all(outcome.ok for outcome in fresh_outcomes)
        assert admission.deadline_expired == 1
        assert admission.admitted == {9: 1, 0: 1}
        assert admission.rejected == {9: 1}

    def test_round_share_interleaves_a_large_workload_with_its_peers(self, database):
        async def scenario():
            server = AsyncResilienceServer(
                ResilienceServer(database, parallel=False),
                round_share=2,
                autostart=False,
            )
            with server:
                big = await server.submit(MIXED * 3)
                small = await server.submit(MIXED[:2])
                server.start()
                big_outcomes, small_outcomes = await asyncio.gather(
                    collect(big), collect(small)
                )
                return big_outcomes, small_outcomes, server.drain_log()

        big_outcomes, small_outcomes, log = run(scenario())
        assert len(big_outcomes) == len(MIXED) * 3 and len(small_outcomes) == 2
        assert all(outcome.ok for outcome in big_outcomes + small_outcomes)
        # The small workload must not wait for the big one to finish: its seq
        # appears in the log before the big workload's last round.
        seqs = [seq for _, seq in log]
        assert seqs.index(2) < len(seqs) - 1 - seqs[::-1].index(1)

    def test_empty_workload_completes_immediately(self, database):
        async def scenario():
            async with AsyncResilienceServer(
                ResilienceServer(database, parallel=False)
            ) as server:
                iterator = await server.submit([])
                outcomes = await collect(iterator)
                # Sticky end-of-stream: iterating again raises instead of
                # blocking on the drained queue.
                with pytest.raises(StopAsyncIteration):
                    await iterator.__anext__()
                return outcomes

        assert run(scenario()) == []

    def test_empty_workload_is_admitted_even_at_a_saturated_queue(self, database):
        async def scenario():
            server = AsyncResilienceServer(
                ResilienceServer(database, parallel=False),
                max_queue_depth=1,
                autostart=False,
            )
            with server:
                await server.submit(MIXED)  # fills the only slot
                empty = await collect(await server.submit([]))  # needs no slot
                return empty, server.metrics().admission

        empty, admission = run(scenario())
        assert empty == []
        assert admission.rejected == {}
        assert sum(admission.admitted.values()) == 2

    def test_aclose_wakes_a_blocked_consumer(self, database):
        async def scenario():
            server = AsyncResilienceServer(
                ResilienceServer(database, parallel=False), autostart=False
            )
            with server:
                # Nothing will ever be delivered (drain not started), so the
                # consumer blocks inside __anext__; aclose() must wake it.
                stream = await server.submit(MIXED)
                consumer = asyncio.ensure_future(collect(stream))
                await asyncio.sleep(0.01)  # let it block in queue.get()
                await stream.aclose()
                return await asyncio.wait_for(consumer, timeout=5)

        assert run(scenario()) == []

    def test_abandoned_waiters_free_their_depth_slots(self, database, reference):
        # Regression: a waiting workload whose consumer gave up (the normal
        # asyncio-timeout cancellation pattern) must not keep occupying an
        # admission slot and phantom-reject live traffic.
        async def scenario():
            server = AsyncResilienceServer(
                ResilienceServer(database, parallel=False),
                max_queue_depth=1,
                autostart=False,
            )
            with server:
                dead = await server.submit(MIXED)
                await dead.aclose()  # cancelled before serving ever started
                live = await server.submit(MIXED)  # must be admitted, not rejected
                server.start()
                return await collect(live)

        assert sorted_outcomes(run(scenario())) == reference

    def test_invalid_parameters(self, database):
        with pytest.raises(ValueError):
            AsyncResilienceServer(ResilienceServer(database), max_queue_depth=0)
        with pytest.raises(ValueError):
            AsyncResilienceServer(ResilienceServer(database), round_share=0)
        # Server-construction kwargs only apply when building from a database;
        # silently ignoring them against a ready server would misconfigure.
        with pytest.raises(ValueError):
            AsyncResilienceServer(ResilienceServer(database), max_workers=8)
        with pytest.raises(ValueError):
            AsyncResilienceServer(ResilienceServer(database), cache=LanguageCache())
        with pytest.raises(ValueError):
            AsyncResilienceServer(ResilienceServer(database), parallel=False)
        with AsyncResilienceServer(database, max_workers=2, parallel=False) as built:
            assert built.server.database is database

        async def bad_deadline():
            async with AsyncResilienceServer(
                ResilienceServer(database, parallel=False)
            ) as server:
                await server.submit(MIXED, deadline=-1.0)

        with pytest.raises(ValueError):
            run(bad_deadline())


QUERY_POOL = ("ax*b", "ab|bc", "aa", "ab", "ε|a", "(ab)*a")


@st.composite
def admission_scenarios(draw):
    workloads = draw(
        st.lists(
            st.tuples(
                st.lists(st.sampled_from(QUERY_POOL), min_size=1, max_size=5),
                st.integers(0, 2),  # priority
                st.booleans(),  # budget the first query?
            ),
            min_size=1,
            max_size=5,
        )
    )
    bound = draw(st.integers(1, 5))
    share = draw(st.sampled_from([None, 1, 2]))
    return workloads, bound, share


class TestAdmissionProperties:
    @settings(max_examples=12, deadline=None)
    @given(scenario=admission_scenarios())
    def test_random_interleavings_lose_and_leak_nothing(self, scenario):
        workloads, bound, share = scenario
        database = generators.random_labelled_graph(4, 9, "abxy", seed=7)

        def to_specs(queries, budgeted):
            specs = [QuerySpec(query) for query in queries]
            if budgeted:
                specs[0] = QuerySpec(queries[0], max_nodes=1)
            return tuple(specs)

        submissions = [
            (to_specs(queries, budgeted), priority)
            for queries, priority, budgeted in workloads
        ]

        async def scenario_run():
            # canonical=False: equivalent queries keep their own syntax's
            # contingency sets, so each workload equals its fresh serial run.
            server = AsyncResilienceServer(
                ResilienceServer(database, parallel=False, cache=LanguageCache(canonical=False)),
                max_queue_depth=bound,
                round_share=share,
                autostart=False,
            )
            with server:
                iterators = [
                    await server.submit(Workload(specs), priority=priority)
                    for specs, priority in submissions
                ]
                server.start()
                results = await asyncio.gather(*(collect(it) for it in iterators))
                return results, server.drain_log(), server.metrics()

        results, log, metrics = run(scenario_run())

        admitted = min(bound, len(submissions))
        for position, ((specs, _), outcomes) in enumerate(zip(submissions, results)):
            # Exactly one outcome per query, indices exactly 0..n-1: nothing
            # lost, nothing duplicated.
            assert sorted(outcome.index for outcome in outcomes) == list(range(len(specs)))
            # No cross-workload leakage: every outcome labels its own spec.
            for outcome in sorted_outcomes(outcomes):
                assert outcome.query == specs[outcome.index].display_name()
            if position < admitted:
                expected = resilience_serve(
                    Workload(specs), database, parallel=False,
                    cache=LanguageCache(canonical=False),
                )
                assert sorted_outcomes(outcomes) == expected
                assert {outcome.status for outcome in outcomes} <= {OK, BUDGET_EXCEEDED}
            else:
                assert all(outcome.status == ADMISSION_REJECTED for outcome in outcomes)

        # Saturated queue (everything submitted before start): priority
        # classes drain in order, FIFO within each class.
        priorities = [priority for priority, _ in log]
        assert priorities == sorted(priorities)
        for cls in set(priorities):
            first_seen = []
            for priority, seq in log:
                if priority == cls and seq not in first_seen:
                    first_seen.append(seq)
            assert first_seen == sorted(first_seen)

        assert sum(metrics.admission.admitted.values()) == admitted
        assert sum(metrics.admission.rejected.values()) == len(submissions) - admitted
        delivered = sum(metrics.outcome_counts().values())
        assert delivered == sum(len(specs) for specs, _ in submissions)


# --------------------------------------------------------------- weighted shares


class TestWeightedShares:
    @staticmethod
    def _rounds_per_seq(log):
        rounds = {}
        for _, seq in log:
            rounds[seq] = rounds.get(seq, 0) + 1
        return rounds

    def test_weight_scales_the_round_cap(self, database):
        # round_share=2: the heavy workload (weight 2.0, cap 4) crosses its 8
        # specs in 2 rounds; its default-weight peer (cap 2) needs 4.
        async def scenario():
            server = AsyncResilienceServer(
                ResilienceServer(database, parallel=False),
                round_share=2,
                autostart=False,
            )
            with server:
                heavy = await server.submit(["aa"] * 8, weight=2.0)
                light = await server.submit(["aa"] * 8)
                server.start()
                await asyncio.gather(collect(heavy), collect(light))
                return server.drain_log()

        rounds = self._rounds_per_seq(run(scenario()))
        assert rounds == {1: 2, 2: 4}

    def test_share_weights_set_the_class_default(self, database):
        async def scenario():
            server = AsyncResilienceServer(
                ResilienceServer(database, parallel=False),
                round_share=2,
                share_weights={7: 3.0},
                autostart=False,
            )
            with server:
                boosted = await server.submit(["aa"] * 6, priority=7)
                plain = await server.submit(["aa"] * 6, priority=8)
                server.start()
                await asyncio.gather(collect(boosted), collect(plain))
                return server.drain_log()

        rounds = self._rounds_per_seq(run(scenario()))
        assert rounds == {1: 1, 2: 3}  # cap 6 in one round vs cap 2 in three

    def test_tiny_weight_floors_at_one_spec_per_round(self, database):
        async def scenario():
            server = AsyncResilienceServer(
                ResilienceServer(database, parallel=False),
                round_share=4,
                autostart=False,
            )
            with server:
                trickle = await server.submit(["aa"] * 5, weight=0.01)
                server.start()
                outcomes = await collect(trickle)
                return outcomes, server.drain_log()

        outcomes, log = run(scenario())
        assert all(outcome.ok for outcome in outcomes) and len(outcomes) == 5
        assert self._rounds_per_seq(log) == {1: 5}, "floor of one spec per round"

    def test_invalid_weights_raise(self, database):
        with pytest.raises(ValueError):
            AsyncResilienceServer(
                ResilienceServer(database, parallel=False), share_weights={0: 0.0}
            )

        async def bad_weight():
            async with AsyncResilienceServer(
                ResilienceServer(database, parallel=False)
            ) as server:
                await server.submit(MIXED, weight=-1.0)

        with pytest.raises(ValueError):
            run(bad_weight())

    @settings(max_examples=10, deadline=None)
    @given(
        configs=st.lists(
            st.tuples(
                st.integers(1, 6),
                st.floats(0.01, 4.0, allow_nan=False, allow_infinity=False),
            ),
            min_size=1,
            max_size=4,
        ),
        round_share=st.integers(1, 3),
    )
    def test_no_positive_weight_starves(self, configs, round_share):
        """Every workload completes, and in exactly the bounded number of
        rounds the weighted cap (with its floor of 1) predicts — the
        no-starvation guarantee as an exact drain-log property."""
        database = generators.random_labelled_graph(4, 9, "abxy", seed=7)

        async def scenario_run():
            server = AsyncResilienceServer(
                ResilienceServer(database, parallel=False),
                round_share=round_share,
                max_queue_depth=16,
                autostart=False,
            )
            with server:
                iterators = [
                    await server.submit(["aa"] * size, weight=weight)
                    for size, weight in configs
                ]
                server.start()
                results = await asyncio.gather(*(collect(it) for it in iterators))
                return results, server.drain_log()

        results, log = run(scenario_run())
        for (size, _), outcomes in zip(configs, results):
            assert sorted(outcome.index for outcome in outcomes) == list(range(size))
            assert all(outcome.ok for outcome in outcomes)
        rounds = TestWeightedShares._rounds_per_seq(log)
        for seq, (size, weight) in enumerate(configs, start=1):
            cap = max(1, round(round_share * weight))
            assert rounds[seq] == math.ceil(size / cap)


# ----------------------------------------------------------------- cancellation


class TestCancellation:
    def test_stream_cancel_cuts_every_unserved_query(self, database):
        # Cancel before the drain starts: deterministically, every query is
        # still unserved, so the token turns the whole workload into
        # structured "error" outcomes instead of serving stale work.
        async def scenario():
            server = AsyncResilienceServer(
                ResilienceServer(database, parallel=False), autostart=False
            )
            with server:
                stream = await server.submit(MIXED)
                stream.cancel()
                server.start()
                return await collect(stream)

        outcomes = run(scenario())
        assert sorted(outcome.index for outcome in outcomes) == list(range(len(MIXED)))
        assert all(outcome.status == ERROR for outcome in outcomes)
        assert all("WorkloadCancelled" in outcome.error for outcome in outcomes)

    def test_stream_cancel_threads_through_a_routed_exchange(self, database):
        # Same contract when the round crosses the exchange layer: the token
        # map is remapped into each node's sub-workload.
        async def scenario():
            server = AsyncResilienceServer(
                ThreadExchange(nodes=2, max_workers=2, parallel=False),
                database=database,
                autostart=False,
            )
            with server:
                stream = await server.submit(MIXED)
                stream.cancel()
                server.start()
                return await collect(stream)

        outcomes = run(scenario())
        assert sorted(outcome.index for outcome in outcomes) == list(range(len(MIXED)))
        assert all("WorkloadCancelled" in outcome.error for outcome in outcomes)

    def test_token_cancels_the_serial_stream_mid_iteration(self, database):
        # The serial path is pull-based, so cancelling between next() calls is
        # a deterministic mid-execution cancellation.
        token = CancellationToken()
        with ResilienceServer(database, parallel=False) as server:
            iterator = server.serve_iter(MIXED, cancel=token)
            served = [next(iterator), next(iterator)]
            token.cancel("WorkloadCancelled: enough")
            tail = list(iterator)
        assert all(outcome.ok for outcome in served)
        assert len(tail) == len(MIXED) - 2
        assert all(
            outcome.status == ERROR and "WorkloadCancelled: enough" in outcome.error
            for outcome in tail
        )
        indices = sorted(outcome.index for outcome in served + tail)
        assert indices == list(range(len(MIXED)))

    def test_deadline_token_rejects_the_tail_mid_stream(self, database):
        token = CancellationToken(deadline_at=time.monotonic() + 0.05)
        with ResilienceServer(database, parallel=False) as server:
            iterator = server.serve_iter(MIXED, cancel=token)
            first = next(iterator)
            time.sleep(0.06)
            tail = list(iterator)
        assert first.ok
        assert all(outcome.status == ADMISSION_REJECTED for outcome in tail)
        assert all("DeadlineExceeded" in outcome.error for outcome in tail)

    def test_parallel_dispatch_skips_cancelled_items(self, database):
        # Chunk dispatch is the second check point: a token cancelled before
        # the generator first runs means nothing reaches the pool.
        token = CancellationToken()
        with ResilienceServer(database, max_workers=2) as server:
            iterator = server.serve_iter(MIXED, cancel=token)
            token.cancel("WorkloadCancelled: before dispatch")
            outcomes = sorted_outcomes(iterator)
        assert [outcome.index for outcome in outcomes] == list(range(len(MIXED)))
        assert all(
            outcome.status == ERROR and "WorkloadCancelled" in outcome.error
            for outcome in outcomes
        )
        assert server.pool_stats().chunks_dispatched == 0

    def test_worker_chunk_checks_cancellation_between_queries(self, database):
        # The third check point, exercised in-process: a chunk already "on a
        # worker" re-reads the shared flag byte (and the deadline) between
        # queries and finishes the tail as structured skipped outcomes.
        from repro.service import plan_workload
        from repro.service.cancellation import FLAG_CANCELLED, make_cancel_flags
        from repro.service.serve import _worker_init, _worker_run_many

        scheduled, failed = plan_workload(Workload.coerce(["aa", "ab", "ax*b"]))
        assert not failed
        flags = make_cancel_flags(4)
        assert flags is not None, "fork platform expected in CI"
        _worker_init(database, flags)
        try:
            flags[2] = FLAG_CANCELLED
            control = {
                item.index: ((2, None) if item.index >= 1 else (3, None))
                for item in scheduled
            }
            flagged = _worker_run_many(scheduled, control)
            by_index = {outcome.index: outcome for outcome in flagged}
            assert by_index[0].ok
            for index in (1, 2):
                assert by_index[index].status == ERROR
                assert "WorkloadCancelled" in by_index[index].error
            # Deadline entries trip the same loop with the rejection status.
            expired = _worker_run_many(
                scheduled,
                {item.index: (None, time.monotonic() - 1.0) for item in scheduled},
            )
            assert all(outcome.status == ADMISSION_REJECTED for outcome in expired)
            assert all("DeadlineExceeded" in outcome.error for outcome in expired)
        finally:
            _worker_init(database, None)

    def test_explicit_cancel_beats_a_passed_deadline(self):
        token = CancellationToken(deadline_at=time.monotonic() - 1.0)
        token.cancel("WorkloadCancelled: explicit")
        status, reason = token.state()
        assert status == ERROR and "explicit" in reason


# --------------------------------------------------------------- fault injection


class TestFaultInjection:
    def test_worker_crash_hits_only_the_affected_workload(self, database, reference):
        # Workload A is pure poison: both queries crash any worker that
        # unpickles them, first dispatch and retry alike, so A must come back
        # all-"error".  Workload B sits in a lower-priority class (its own
        # serving round) and must be answered completely and correctly on a
        # replacement pool.
        async def scenario():
            server = AsyncResilienceServer(
                ResilienceServer(database, max_workers=2),
                autostart=False,
            )
            with server:
                poisoned = await server.submit(
                    [QuerySpec(poison_language("ab|ba")), QuerySpec(poison_language("aab"))],
                    priority=0,
                )
                healthy = await server.submit(MIXED, priority=1)
                server.start()
                poisoned_outcomes, healthy_outcomes = await asyncio.gather(
                    collect(poisoned), collect(healthy)
                )
                return poisoned_outcomes, healthy_outcomes, server.metrics()

        poisoned_outcomes, healthy_outcomes, metrics = run(scenario())
        assert len(poisoned_outcomes) == 2
        for outcome in poisoned_outcomes:
            assert outcome.status == ERROR
            assert "BrokenProcessPool" in outcome.error
        assert sorted_outcomes(healthy_outcomes) == reference
        assert metrics.pool.crashes >= 2, "first dispatch and retry must both crash"
        assert metrics.pool.pools_created >= 2, "a replacement pool must have been forked"
        assert metrics.outcome_counts()[ERROR] == 2

    def test_closed_server_rejects_submit_cleanly(self, database):
        server = AsyncResilienceServer(ResilienceServer(database, parallel=False))
        server.close()

        async def try_submit():
            await server.submit(MIXED)

        with pytest.raises(ReproError):
            run(try_submit())
        with pytest.raises(ReproError):
            server.metrics_endpoint()
        server.close()  # idempotent

    def test_close_fails_waiting_workloads_structurally(self, database):
        async def scenario():
            server = AsyncResilienceServer(
                ResilienceServer(database, parallel=False), autostart=False
            )
            waiting = await server.submit(MIXED)
            await asyncio.get_running_loop().run_in_executor(None, server.close)
            return await collect(waiting)

        outcomes = run(scenario())
        assert len(outcomes) == len(MIXED)
        assert all(outcome.status == ERROR for outcome in outcomes)
        assert all("ServerClosed" in outcome.error for outcome in outcomes)

    def test_closing_the_async_server_closes_the_wrapped_server(self, database):
        inner = ResilienceServer(database, parallel=False)
        AsyncResilienceServer(inner).close()
        with pytest.raises(ReproError):
            inner.serve(MIXED)


# ----------------------------------------------------------------- abandonment


class TestAbandonment:
    def test_abandoned_async_iterator_neither_wedges_nor_burns_the_tail(
        self, database, reference
    ):
        async def scenario():
            server = AsyncResilienceServer(
                ResilienceServer(database, parallel=False),
                round_share=1,
                autostart=False,
            )
            with server:
                big = await server.submit(MIXED * 8)
                server.start()
                async for outcome in big:
                    assert outcome.ok
                    break  # abandon mid-stream after the first outcome
                # Breaking leaves the generator suspended until GC; aclose()
                # is the deterministic version of that finalization.
                await big.aclose()
                # The next workload must be served with full parity.
                follow_up = await collect(await server.submit(MIXED))
                # Give the drain a moment to observe the abandonment, then
                # check the tail was dropped rather than served to nobody.
                delivered = sum(server.metrics().outcome_counts().values())
                return follow_up, delivered

        follow_up, delivered = run(scenario())
        assert sorted_outcomes(follow_up) == reference
        assert delivered < len(MIXED) * 8 + len(MIXED), (
            "the abandoned workload's tail must not keep being served"
        )

    def test_gcd_sync_generator_neither_leaks_chunks_nor_wedges_serve(
        self, database, reference
    ):
        # The satellite regression: a serve_iter() generator abandoned by
        # garbage collection (no explicit close()) after its first outcome
        # must cancel its pending pool chunks, and the next serve() call must
        # return full, correct results on the same server.
        with ResilienceServer(database, max_workers=2) as server:
            iterator = server.serve_iter(MIXED * 8)
            first = next(iterator)
            assert first.status == OK
            del iterator
            gc.collect()
            assert server.serve(MIXED) == reference

    def test_gcd_unstarted_sync_generator_is_harmless(self, database, reference):
        with ResilienceServer(database, max_workers=2) as server:
            iterator = server.serve_iter(MIXED * 4)
            del iterator  # planned but never started: nothing dispatched
            gc.collect()
            assert server.serve(MIXED) == reference


# --------------------------------------------------------------------- metrics


class TestMetrics:
    def test_snapshot_and_endpoint_agree(self, database):
        async def scenario():
            async with AsyncResilienceServer(
                ResilienceServer(database, max_workers=2)
            ) as server:
                for _ in range(2):
                    await collect(await server.submit(MIXED))
                programmatic = server.metrics()
                endpoint = server.metrics_endpoint(port=0)
                with urllib.request.urlopen(endpoint.url, timeout=10) as response:
                    assert response.headers["Content-Type"] == "application/json"
                    scraped = json.loads(response.read())
                with pytest.raises(urllib.error.HTTPError):
                    urllib.request.urlopen(
                        f"http://{endpoint.host}:{endpoint.port}/nope", timeout=10
                    )
                endpoint.close()
                return programmatic, scraped

        programmatic, scraped = run(scenario())
        assert scraped == json.loads(programmatic.to_json())
        assert scraped == programmatic.as_dict()
        # The counters genuinely moved: pass 2 was answered by the result
        # cache, outcomes were delivered, the pool dispatched chunks.
        assert programmatic.cache.result_hits > 0
        assert programmatic.outcome_counts()[OK] == 2 * len(MIXED)
        assert programmatic.pool.chunks_dispatched > 0
        assert programmatic.pool.worker_pids == tuple(sorted(programmatic.pool.worker_pids))
        assert programmatic.admission.depth == 0

    def test_latency_histograms_count_every_delivered_outcome(self, database):
        # Forcing "exact" on a query with positive resilience makes the
        # 1-node budget trip deterministically on this database.
        budgeted = QuerySpec("ab|ad|cd", method="exact", max_nodes=1)

        async def scenario():
            async with AsyncResilienceServer(
                ResilienceServer(database, parallel=False)
            ) as server:
                await collect(await server.submit(MIXED))
                await collect(await server.submit([budgeted, "ab"]))
                return server.metrics()

        metrics = run(scenario())
        counts = metrics.outcome_counts()
        assert counts[OK] == len(MIXED) + 1
        assert counts[BUDGET_EXCEEDED] == 1
        histogram = metrics.latency[OK]
        assert sum(histogram["buckets"].values()) == histogram["count"]
        assert histogram["sum_seconds"] >= 0.0

    def test_cache_stats_aggregation_hook(self):
        parts = [
            CacheStats(canonical_hits=1, classifications=2, result_hits=3),
            CacheStats(canonical_hits=4, canonical_misses=5, result_misses=6),
        ]
        total = CacheStats.aggregate(parts)
        assert total == CacheStats(
            canonical_hits=5,
            canonical_misses=5,
            classifications=2,
            result_hits=3,
            result_misses=6,
        )
        assert total.as_dict()["canonical_hits"] == 5
        snapshot = parts[0].snapshot()
        parts[0].classifications += 1
        assert snapshot.classifications == 2, "snapshot must be frozen in time"

    def test_latency_histogram_quantiles(self):
        from repro.service import LatencyHistogram

        histogram = LatencyHistogram()
        assert histogram.quantile(0.5) == 0.0
        for seconds in (0.0005, 0.002, 0.002, 0.3, 20.0):
            histogram.record(seconds)
        assert histogram.count == 5
        assert histogram.quantile(0.5) == 0.0025
        assert histogram.quantile(1.0) == 10.0  # overflow reports the top bound
        with pytest.raises(ValueError):
            histogram.quantile(1.5)


def parse_prometheus(text):
    """Parse a text exposition into ``{series: value}`` + declared types.

    Raises (failing the test) on any line that is neither a comment nor a
    well-formed ``name{labels} value`` sample — the scrape-parses guarantee.
    """
    samples, types = {}, {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        series, value = line.rsplit(" ", 1)
        assert series not in samples, f"duplicate series {series}"
        samples[series] = float(value)
    return samples, types


class TestPrometheusExposition:
    def test_scrape_parses_with_coherent_series(self, database):
        async def scenario():
            async with AsyncResilienceServer(
                ResilienceServer(database, max_workers=2)
            ) as server:
                for _ in range(2):
                    await collect(await server.submit(MIXED))
                endpoint = server.metrics_endpoint(port=0)
                request = urllib.request.Request(f"{endpoint.url}?format=prometheus")
                with urllib.request.urlopen(request, timeout=10) as response:
                    param_type = response.headers["Content-Type"]
                    text = response.read().decode("utf-8")
                # The Accept header negotiates the same representation.
                request = urllib.request.Request(
                    endpoint.url, headers={"Accept": "text/plain"}
                )
                with urllib.request.urlopen(request, timeout=10) as response:
                    accept_type = response.headers["Content-Type"]
                # And the default stays JSON.
                with urllib.request.urlopen(endpoint.url, timeout=10) as response:
                    default_type = response.headers["Content-Type"]
                endpoint.close()
                return text, param_type, accept_type, default_type, server.metrics()

        text, param_type, accept_type, default_type, metrics = run(scenario())
        assert param_type == "text/plain; version=0.0.4; charset=utf-8"
        assert accept_type == param_type
        assert default_type == "application/json"

        samples, types = parse_prometheus(text)
        # Every sample belongs to a declared family (histogram children map
        # back to their base name).
        for series in samples:
            name = series.split("{", 1)[0]
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name.removesuffix(suffix) in types:
                    base = name.removesuffix(suffix)
            assert base in types, f"undeclared family for {series}"
        assert types["repro_latency_seconds"] == "histogram"

        assert samples['repro_outcomes_total{status="ok"}'] == 2 * len(MIXED)
        assert samples['repro_admission_admitted_total{priority="0"}'] == 2
        assert samples["repro_admission_depth"] == 0
        assert samples["repro_cache_result_hits_total"] == metrics.cache.result_hits
        assert samples["repro_pool_pool_width"] == 2

        # Histogram coherence: cumulative buckets are monotone, +Inf equals
        # the count sample, the sum is present.
        buckets = [
            (series, value)
            for series, value in samples.items()
            if series.startswith('repro_latency_seconds_bucket{status="ok",')
        ]
        values = [value for _, value in buckets]
        assert values == sorted(values), "cumulative le buckets must be monotone"
        assert buckets[-1][0].endswith('le="+Inf"}')
        assert values[-1] == samples['repro_latency_seconds_count{status="ok"}']
        assert values[-1] == 2 * len(MIXED)
        assert 'repro_latency_seconds_sum{status="ok"}' in samples

    def test_per_node_series_carry_node_labels(self, database):
        async def scenario():
            async with AsyncResilienceServer(
                ThreadExchange(nodes=2, max_workers=2, parallel=False),
                database=database,
            ) as server:
                await collect(await server.submit(MIXED))
                return server.metrics().to_prometheus()

        samples, _ = parse_prometheus(run(scenario()))
        assert samples['repro_node_alive{node="node-0"}'] == 1
        assert samples['repro_node_alive{node="node-1"}'] == 1
        served = [
            samples[f'repro_node_envelopes_served_total{{node="node-{i}"}}']
            for i in range(2)
        ]
        assert sum(served) == 1, "one merged round, routed to one node"
        # The single-node default labels its one node "local".
        async def local_scenario():
            async with AsyncResilienceServer(
                ResilienceServer(database, parallel=False)
            ) as server:
                await collect(await server.submit(MIXED))
                return server.metrics().to_prometheus()

        local_samples, _ = parse_prometheus(run(local_scenario()))
        assert local_samples['repro_node_alive{node="local"}'] == 1

    def test_degraded_serves_counter_is_exported(self, database, reference):
        """A dead launcher-less fleet degrades to the in-process serial
        fallback; the front-end's metrics surface counts it and the
        Prometheus rendering carries the counter."""
        from repro.service import NodeManager
        from repro.service.exchange import RoutedExchange, ThreadNode

        manager = NodeManager()
        manager.register(ThreadNode("only", max_workers=2, parallel=False))

        async def scenario():
            async with AsyncResilienceServer(
                RoutedExchange(manager), database=database
            ) as server:
                server.exchange.manager.kill("only")
                outcomes = await collect(await server.submit(MIXED))
                metrics = server.metrics()
                return outcomes, metrics

        outcomes, metrics = run(scenario())
        assert sorted_outcomes(outcomes) == reference
        assert metrics.degraded_serves == 1
        assert metrics.as_dict()["degraded_serves"] == 1
        samples, _ = parse_prometheus(metrics.to_prometheus())
        assert samples["repro_degraded_serves_total"] == 1
