"""Tests for infix-free sublanguages IF(L) (Section 2, Appendix B)."""

import pytest

from repro.languages import Language, infix


class TestFiniteInfixFree:
    def test_paper_example(self):
        # The paper's example: IF(abbc | bb) = bb.
        assert infix.infix_free_words({"abbc", "bb"}) == {"bb"}

    def test_already_infix_free(self):
        words = {"ab", "cd", "ef"}
        assert infix.infix_free_words(words) == words

    def test_removes_superwords_only(self):
        assert infix.infix_free_words({"a", "aa", "ba", "ab"}) == {"a"}

    def test_l0_example_from_section_3(self):
        # IF({a, aa}) = {a} (used right after Theorem 3.13).
        language = Language.from_words(["a", "aa"])
        assert language.infix_free().words() == {"a"}

    def test_epsilon_dominates_everything(self):
        assert infix.infix_free_words({"", "a", "ab"}) == {""}


class TestRegularInfixFree:
    def test_infinite_language(self):
        # IF(a x* b | xx) : xx is an infix of axxb, so axxb and longer words go away.
        language = Language.from_regex("ax*b|xx")
        reduced = language.infix_free()
        assert "ab" in reduced
        assert "axb" in reduced
        assert "xx" in reduced
        assert "axxb" not in reduced
        assert "axxxb" not in reduced

    def test_infinite_language_stays_equal_when_already_infix_free(self):
        language = Language.from_regex("ax*b")
        assert language.infix_free().equivalent_to(language)

    def test_is_infix_free_predicate(self):
        assert infix.is_infix_free(Language.from_regex("ab|cd"))
        assert not infix.is_infix_free(Language.from_regex("ab|abc"))
        assert infix.is_infix_free(Language.from_regex("ax*b"))
        assert not infix.is_infix_free(Language.from_regex("ax*b|xx"))

    def test_queries_unchanged(self):
        # Q_L and Q_IF(L) are the same query: IF never removes all witnesses.
        language = Language.from_regex("abb|bb|b")
        reduced = language.infix_free()
        assert reduced.words() == {"b"}


class TestStrictInfixSearch:
    def test_strict_infix_in_language(self):
        language = Language.from_regex("bb")
        assert infix.strict_infix_in_language("abbc", language) == "bb"

    def test_no_strict_infix(self):
        language = Language.from_regex("abc")
        assert infix.strict_infix_in_language("abc", language) is None


class TestPreservationLemmas:
    def test_lemma_3_14_infix_free_preserves_locality(self):
        # If L is local then IF(L) is local.
        for expression in ["ax*b", "ab|ad|cd", "a|ab", "abc|abd"]:
            language = Language.from_regex(expression)
            if language.is_local():
                assert language.infix_free().is_local(), expression

    def test_claim_b1_infix_free_preserves_star_freeness(self):
        for expression in ["ab|cd", "ax*b", "abc|abd|a"]:
            language = Language.from_regex(expression)
            assert language.is_star_free()
            assert language.infix_free().is_star_free()

    def test_mirror_commutes_with_infix_free(self):
        language = Language.from_regex("abbc|bb|dd")
        left = language.mirror().infix_free()
        right = language.infix_free().mirror()
        assert left.equivalent_to(right)
