"""Tests for the Figure 1 classifier."""

import pytest

from repro.classify import classify, classify_regex, figure_1_table
from repro.languages import Language
from repro.languages.examples import FIGURE_1_LANGUAGES, NP_HARD, PTIME, UNCLASSIFIED


class TestFigure1:
    @pytest.mark.parametrize("example", FIGURE_1_LANGUAGES, ids=lambda e: e.regex)
    def test_every_figure_1_language_is_classified_as_in_the_paper(self, example):
        result = classify(example.language())
        assert result.complexity == example.complexity, (example.regex, result.reason)

    def test_figure_1_table_agrees_everywhere(self):
        rows = figure_1_table()
        assert len(rows) == len(FIGURE_1_LANGUAGES)
        assert all(row["agrees"] for row in rows)

    def test_ptime_languages_have_algorithms(self):
        for example in FIGURE_1_LANGUAGES:
            if example.complexity == PTIME:
                result = classify(example.language())
                assert result.algorithm is not None, example.regex


class TestSpecificClassifications:
    def test_infix_free_reduction_is_applied(self):
        # L = a | aa has IF(L) = a which is local.
        assert classify_regex("a|aa").complexity == PTIME

    def test_epsilon_language(self):
        result = classify_regex("ε|ab")
        assert result.complexity == PTIME
        assert result.algorithm == "trivial-epsilon"

    def test_square_letter_infinite_language(self):
        result = classify_regex("e*(a|c)e*(a|d)e*")
        assert result.complexity == NP_HARD

    def test_unclassified_open_cases(self):
        for expression in ["abc|bcd", "abc|bef", "ab*c|ba", "ab*d|ac*d|bc"]:
            assert classify_regex(expression).complexity == UNCLASSIFIED, expression

    def test_classify_does_not_mutate_the_memoized_infix_free_language(self):
        # Regression: classify() used to overwrite infix_free.name in place —
        # the same defect PR 1 fixed in resilience().  With infix_free()
        # memoized on the Language instance this corrupted the shared cache.
        language = Language.from_regex("ab|bc")
        infix_free = language.infix_free()
        original_name = infix_free.name
        classify(language)
        assert language.infix_free() is infix_free
        assert infix_free.name == original_name

    def test_hardness_gadget_does_not_mutate_the_memoized_infix_free_language(self):
        # The same in-place renaming lived in hardness_gadget(); with the
        # memoized infix_free() it must also go through a copy.
        from repro.hardness import construct

        language = Language.from_regex("aa")
        infix_free = language.infix_free()
        original_name = infix_free.name
        construct.hardness_gadget(language)
        assert language.infix_free() is infix_free
        assert infix_free.name == original_name

    def test_epsilon_language_skips_infix_free_computation(self):
        # Regression: the epsilon short-circuit is hoisted above the expensive
        # infix_free() computation, mirroring the engine's dispatch order.
        language = Language.from_regex("ε|ab")
        calls = []
        original = Language.infix_free

        def counting(self):
            calls.append(self)
            return original(self)

        Language.infix_free = counting
        try:
            result = classify(language)
        finally:
            Language.infix_free = original
        assert result.algorithm == "trivial-epsilon"
        assert calls == []

    def test_reason_mentions_paper_result(self):
        assert "Theorem 3.13" in classify_regex("ax*b").reason
        assert "Proposition 7.6" in classify_regex("ab|bc").reason
        assert "Proposition 7.9" in classify_regex("abc|be").reason
        assert "Theorem 5.3" in classify_regex("axb|cxd").reason
        assert "Theorem 6.1" in classify_regex("aa").reason

    def test_evidence_for_four_legged(self):
        result = classify_regex("axb|cxd")
        witness = result.evidence["four_legged_witness"]
        assert witness.is_valid_for(Language.from_regex("axb|cxd"))


class TestCertificates:
    @pytest.mark.parametrize("expression", ["aa", "axb|cxd", "ab|bc|ca", "aaaa"])
    def test_certificates_are_verified(self, expression):
        result = classify_regex(expression, build_certificate=True)
        assert result.complexity == NP_HARD
        assert result.certificate is not None
        assert result.certificate.verification.valid

    def test_certificate_gap_is_reported_not_fabricated(self):
        # abca|cab needs the Figure 12 construction, which this reproduction
        # could not verify; the classifier must report the gap explicitly.
        result = classify_regex("abca|cab", build_certificate=True)
        assert result.complexity == NP_HARD
        assert result.certificate is None
        assert "certificate_error" in result.evidence

    def test_ptime_languages_have_no_certificates(self):
        result = classify_regex("ax*b", build_certificate=True)
        assert result.certificate is None


class TestConsistencyWithResilience:
    def test_classifier_and_dispatcher_agree(self):
        from repro.resilience import choose_method

        for example in FIGURE_1_LANGUAGES:
            language = example.language()
            result = classify(language)
            method = choose_method(language)
            if result.complexity == PTIME and result.algorithm != "trivial-epsilon":
                assert method == result.algorithm, example.regex
            if result.complexity in (NP_HARD, UNCLASSIFIED):
                assert method == "exact", example.regex
