"""Tests for hypergraphs of matches, condensation rules, and hitting sets (Section 4.3)."""

import pytest

from repro.hardness.hypergraph import (
    Hypergraph,
    condense,
    is_odd_path,
    minimum_hitting_set,
    minimum_hitting_set_size,
    odd_path_length,
)


def path_hypergraph(length: int) -> Hypergraph:
    nodes = list(range(length + 1))
    edges = [{i, i + 1} for i in range(length)]
    return Hypergraph.from_matches(nodes, edges)


class TestBasics:
    def test_incident_edges(self):
        graph = path_hypergraph(3)
        assert len(graph.incident_edges(1)) == 2
        assert len(graph.incident_edges(0)) == 1

    def test_rejects_unknown_nodes(self):
        with pytest.raises(ValueError):
            Hypergraph(frozenset({1}), frozenset({frozenset({1, 2})}))

    def test_remove_node(self):
        graph = path_hypergraph(2).remove_node(1)
        assert 1 not in graph.nodes
        assert all(1 not in edge for edge in graph.edges)


class TestCondensation:
    def test_edge_domination(self):
        graph = Hypergraph.from_matches([1, 2, 3], [{1, 2}, {1, 2, 3}])
        condensed = condense(graph, protected=[1])
        assert frozenset({1, 2, 3}) not in condensed.edges

    def test_node_domination(self):
        # Node 3 appears only in the big edge; it is dominated by 1 and 2.
        graph = Hypergraph.from_matches([1, 2, 3], [{1, 2}, {2, 3}, {1, 2, 3}])
        condensed = condense(graph)
        assert minimum_hitting_set_size(condensed) == minimum_hitting_set_size(graph)

    def test_protected_nodes_survive(self):
        graph = Hypergraph.from_matches([1, 2], [{1, 2}])
        condensed = condense(graph, protected=[1, 2])
        assert condensed.nodes == frozenset({1, 2})

    def test_claim_4_8_hitting_set_preserved(self):
        import random

        rng = random.Random(0)
        for _ in range(15):
            nodes = list(range(7))
            edges = []
            for _ in range(6):
                size = rng.randint(1, 3)
                edges.append(set(rng.sample(nodes, size)))
            graph = Hypergraph.from_matches(nodes, edges)
            condensed = condense(graph)
            assert minimum_hitting_set_size(condensed) == minimum_hitting_set_size(graph)

    def test_path_is_a_fixpoint(self):
        graph = path_hypergraph(5)
        condensed = condense(graph, protected=[0, 5])
        assert condensed.edges == graph.edges


class TestOddPath:
    def test_odd_path_detection(self):
        assert is_odd_path(path_hypergraph(5), 0, 5)
        assert not is_odd_path(path_hypergraph(4), 0, 4)
        assert odd_path_length(path_hypergraph(7), 0, 7) == 7

    def test_wrong_endpoints(self):
        assert not is_odd_path(path_hypergraph(5), 0, 3)
        assert not is_odd_path(path_hypergraph(5), 0, 0)

    def test_branching_is_not_a_path(self):
        graph = Hypergraph.from_matches([0, 1, 2, 3], [{0, 1}, {1, 2}, {1, 3}])
        assert not is_odd_path(graph, 0, 3)

    def test_disconnected_extra_node(self):
        graph = Hypergraph.from_matches([0, 1, 2, 3, 9], [{0, 1}, {1, 2}, {2, 3}])
        assert not is_odd_path(graph, 0, 3)

    def test_large_hyperedge_is_not_a_path(self):
        graph = Hypergraph.from_matches([0, 1, 2], [{0, 1, 2}])
        assert not is_odd_path(graph, 0, 2)

    def test_cycle_is_not_a_path(self):
        graph = Hypergraph.from_matches([0, 1, 2, 3], [{0, 1}, {1, 2}, {2, 3}, {3, 1}])
        assert not is_odd_path(graph, 0, 3)


class TestHittingSet:
    def test_path_hitting_set(self):
        assert minimum_hitting_set_size(path_hypergraph(5)) == 3  # vertex cover of P6

    def test_hitting_set_is_valid(self):
        graph = Hypergraph.from_matches([1, 2, 3, 4], [{1, 2}, {2, 3}, {3, 4}, {1, 4}])
        hitting = minimum_hitting_set(graph)
        assert all(edge & hitting for edge in graph.edges)
        assert len(hitting) == 2

    def test_empty_hyperedge_rejected(self):
        graph = Hypergraph.from_matches([1], [set()])
        with pytest.raises(ValueError):
            minimum_hitting_set(graph)
