"""Cross-module integration tests: the full pipeline of the paper on small scenarios."""

import pytest

from repro import BagGraphDatabase, GraphDatabase, Language, RPQ, resilience
from repro.classify import classify
from repro.graphdb import generators
from repro.hardness import build_reduction, check_reduction, hardness_gadget
from repro.resilience import resilience_exact, verify_contingency_set


class TestMinCutStory:
    """The introduction's connection between resilience of a x* b and MinCut."""

    def test_flow_network_resilience(self):
        bag = generators.layered_flow_database(4, 3, seed=11)
        result = resilience("ax*b", bag)
        assert result.method == "local-flow"
        assert verify_contingency_set("ax*b", bag, result)

    def test_resilience_monotone_in_multiplicities(self):
        base = generators.layered_flow_database(3, 2, seed=3)
        doubled = BagGraphDatabase({fact: 2 * mult for fact, mult in base.multiplicities().items()})
        assert resilience("ax*b", doubled).value == 2 * resilience("ax*b", base).value


class TestTractableAlgorithmsAgree:
    def test_all_three_flow_algorithms_against_exact(self):
        scenarios = [
            ("ab|ad|cd", "abcd"),
            ("ab|bc", "abc"),
            ("abc|be", "abce"),
        ]
        for expression, alphabet in scenarios:
            language = Language.from_regex(expression)
            for seed in range(3):
                database = generators.random_labelled_graph(5, 11, alphabet, seed=seed)
                fast = resilience(language, database)
                slow = resilience_exact(language, database)
                assert fast.value == slow.value, (expression, seed)


class TestHardnessPipeline:
    def test_classify_then_certify_then_reduce(self):
        language = Language.from_regex("axb|cxd")
        classification = classify(language, build_certificate=True)
        assert classification.complexity == "NP-hard"
        certificate = classification.certificate
        assert certificate is not None
        instance = build_reduction(
            certificate.gadget_language,
            certificate.gadget,
            [(0, 1), (1, 2)],
            verification=certificate.verification,
        )
        assert check_reduction(instance)

    def test_certificate_for_every_decidedly_hard_small_language(self):
        for expression in ["aa", "aaa", "aab", "ab|bc|ca", "abcd|bef"]:
            certificate = hardness_gadget(Language.from_regex(expression))
            assert certificate.verification.valid, expression


class TestEndToEndScenario:
    def test_fraud_ring_scenario(self):
        # A small "transaction graph" scenario: accounts connected by labelled
        # edges; the query detects a suspicious pattern; resilience counts how
        # many edges an auditor must delete to rule the pattern out.
        edges = [
            ("acct1", "a", "acct2"),
            ("acct2", "x", "acct3"),
            ("acct3", "x", "acct4"),
            ("acct4", "b", "acct5"),
            ("acct2", "b", "acct6"),
            ("acct0", "a", "acct2"),
        ]
        database = GraphDatabase.from_edges(edges)
        query = RPQ.from_regex("ax*b")
        assert query.holds(database)
        result = resilience(query.language, database)
        # Every witnessing walk enters acct2 through one of the two a-edges and
        # leaves towards storage through one of the two b-branches, so two
        # deletions are needed (e.g. both b-side bottlenecks).
        assert result.value == 2
        assert verify_contingency_set(query.language, database, result)
        cleaned = database.remove(result.contingency_set)
        assert not query.holds(cleaned)

    def test_bag_semantics_costs(self):
        bag = BagGraphDatabase.from_edges(
            [("u", "a", "v", 10), ("v", "x", "w", 1), ("w", "b", "t", 10), ("v", "b", "t", 1)]
        )
        result = resilience("ax*b", bag)
        assert result.value == 2  # cut the two cheap facts rather than the expensive ones
        assert verify_contingency_set("ax*b", bag, result)
