"""Tests for star-free / aperiodic languages (Section 5.2)."""

import pytest

from repro.languages import Language, star_free


class TestIsStarFree:
    @pytest.mark.parametrize(
        "expression", ["ab|cd", "ax*b", "a*b", "abc|abd", "(a|b)*c", "aa", "abca|cab"]
    )
    def test_star_free_languages(self, expression):
        assert star_free.is_star_free(Language.from_regex(expression)), expression

    @pytest.mark.parametrize("expression", ["b(aa)*d", "(aa)*", "a(bb)*c|d", "e(aaa)*f"])
    def test_non_star_free_languages(self, expression):
        # Languages counting modulo 2 are not aperiodic.
        assert not star_free.is_star_free(Language.from_regex(expression)), expression

    def test_empty_language(self):
        assert star_free.is_star_free(Language.from_words([]))


class TestCounterexamples:
    def test_no_counterexample_for_star_free(self):
        assert star_free.non_star_free_witness(Language.from_regex("ax*b")) is None

    @pytest.mark.parametrize("expression", ["b(aa)*d", "(aa)*", "a(bb)*c"])
    def test_counterexample_is_genuine(self, expression):
        language = Language.from_regex(expression)
        counterexample = star_free.non_star_free_witness(language)
        assert counterexample is not None
        in_k = language.contains(counterexample.word_k())
        in_m = language.contains(counterexample.word_m())
        assert in_k != in_m
        assert counterexample.exponent_k > counterexample.num_states
        assert counterexample.exponent_m >= counterexample.exponent_k

    def test_counterexample_sigma_nonempty(self):
        counterexample = star_free.non_star_free_witness(Language.from_regex("b(aa)*d"))
        assert counterexample is not None
        assert counterexample.sigma


class TestTransitionMonoid:
    def test_monoid_of_single_word_language(self):
        elements, _ = star_free.transition_monoid(Language.from_regex("ab"))
        # The monoid contains the identity plus transformations of a, b, ab, and
        # the zero transformation (everything to the sink).
        assert tuple(range(len(next(iter(elements))))) in elements
        assert len(elements) >= 4

    def test_monoid_size_cap(self):
        from repro.exceptions import LanguageError

        with pytest.raises(LanguageError):
            star_free.transition_monoid(Language.from_regex("b(aa)*d"), max_monoid_size=1)
