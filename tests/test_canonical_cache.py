"""Property tests for the canonical-DFA fingerprint and the on-disk store.

Three pinned guarantees:

* the fingerprint is a *perfect* proxy for language equivalence on the test
  corpus: random regex pairs share a fingerprint iff their minimal DFAs are
  equal (languages over one fixed alphabet, so the alphabet component of the
  fingerprint never masks a disagreement);
* an :class:`AnalysisStore` round-trip is indistinguishable from a fresh
  computation — same method, byte-identical infix-free automaton, identical
  resilience results;
* the store never trusts what it cannot validate: corrupted bytes, a stale
  code-version salt and a mis-keyed entry are all ignored and recomputed.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphdb import generators
from repro.languages import Language, canonical_dfa, canonical_fingerprint
from repro.languages.operations import equivalent
from repro.resilience import (
    AnalysisStore,
    LanguageCache,
    choose_method,
    resilience_many,
)

ALPHABET = "ab"


def regexes():
    """Random regexes over ``{a, b}`` built from |, concatenation and star."""
    letters = st.sampled_from(["a", "b"])
    return st.recursive(
        letters,
        lambda inner: st.one_of(
            st.tuples(inner, inner).map(lambda pair: f"({pair[0]}{pair[1]})"),
            st.tuples(inner, inner).map(lambda pair: f"({pair[0]}|{pair[1]})"),
            inner.map(lambda expression: f"({expression})*"),
        ),
        max_leaves=6,
    )


def language(expression):
    return Language.from_regex(expression, alphabet=ALPHABET)


class TestFingerprint:
    @settings(max_examples=60, deadline=None)
    @given(regexes(), regexes())
    def test_fingerprints_agree_exactly_with_equivalence(self, left, right):
        left_language, right_language = language(left), language(right)
        same_fingerprint = left_language.fingerprint() == right_language.fingerprint()
        assert same_fingerprint == equivalent(
            left_language.automaton, right_language.automaton
        )

    @settings(max_examples=40, deadline=None)
    @given(regexes())
    def test_fingerprint_is_stable_and_canonical(self, expression):
        first = language(expression)
        second = language(expression)
        assert first.fingerprint() == second.fingerprint()
        assert first.fingerprint() == canonical_fingerprint(first.automaton)
        # The canonical DFA is a *normal form*: canonicalizing it again is a
        # fixed point, and it recognizes the same language.
        dfa = canonical_dfa(first.automaton)
        assert canonical_dfa(dfa) == dfa
        assert equivalent(dfa, first.automaton)

    def test_alphabet_is_part_of_the_fingerprint(self):
        narrow = Language.from_regex("a")
        wide = Language.from_regex("a", alphabet="ab")
        assert narrow.fingerprint() != wide.fingerprint()

    def test_relabelled_copy_shares_the_memoized_fingerprint(self):
        original = language("(ab)*a")
        fingerprint = original.fingerprint()
        assert original.relabelled("other")._fingerprint == fingerprint


class TestStoreRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(regexes())
    def test_round_trip_equals_fresh_computation(self, tmp_path_factory, expression):
        store = AnalysisStore(tmp_path_factory.mktemp("store"))
        fresh = language(expression)
        method = choose_method(fresh)
        fingerprint = fresh.fingerprint()
        store.put(fingerprint, method=method, infix_free=fresh._infix_free)

        loaded = store.get(fingerprint)
        assert loaded is not None
        assert loaded.method == method
        if fresh._infix_free is None:
            assert loaded.infix_free is None
        else:
            # Byte-identical automaton: a store hit runs the exact same search
            # a fresh computation would, node for node.
            assert loaded.infix_free.automaton == fresh._infix_free.automaton
            if fresh._infix_free.is_finite():
                assert loaded.infix_free.words() == fresh._infix_free.words()

    @settings(max_examples=15, deadline=None)
    @given(st.lists(regexes(), min_size=1, max_size=5))
    def test_warm_store_results_equal_cold_results(self, tmp_path_factory, expressions):
        directory = tmp_path_factory.mktemp("store")
        database = generators.random_labelled_graph(4, 9, ALPHABET, seed=1)
        queries = [language(expression) for expression in expressions]
        cold = resilience_many(queries, database, store=AnalysisStore(directory))
        warm_store = AnalysisStore(directory)
        warm_cache = LanguageCache(store=warm_store)
        warm = resilience_many(
            [language(expression) for expression in expressions], database, cache=warm_cache
        )
        assert warm == cold
        assert warm_cache.stats.classifications == 0
        assert warm_store.stats().writes == 0


class TestStoreValidation:
    QUERY = "ab|ba"

    def populate(self, directory):
        store = AnalysisStore(directory)
        fresh = language(self.QUERY)
        method = choose_method(fresh)
        store.put(fresh.fingerprint(), method=method, infix_free=fresh._infix_free)
        return fresh.fingerprint(), method

    def test_corrupted_entry_is_ignored_not_trusted(self, tmp_path):
        fingerprint, _ = self.populate(tmp_path)
        path = tmp_path / f"{fingerprint}.analysis"
        path.write_bytes(b"\x00garbage, not a pickle")
        store = AnalysisStore(tmp_path)
        assert store.get(fingerprint) is None
        assert store.stats().ignored == 1

    def test_truncated_entry_is_ignored(self, tmp_path):
        fingerprint, _ = self.populate(tmp_path)
        path = tmp_path / f"{fingerprint}.analysis"
        path.write_bytes(path.read_bytes()[:10])
        store = AnalysisStore(tmp_path)
        assert store.get(fingerprint) is None
        assert store.stats().ignored == 1

    def test_stale_code_version_salt_is_ignored_and_evicted(self, tmp_path):
        fresh = language(self.QUERY)
        stale = AnalysisStore(tmp_path, salt="0123456789abcdef")
        stale.put(fresh.fingerprint(), method="exact", infix_free=fresh.infix_free())
        current = AnalysisStore(tmp_path)
        assert current.get(fresh.fingerprint()) is None
        assert current.stats().ignored == 1
        # Detection evicts: the stale file is gone, so the next miss is a
        # plain miss (no re-read, no re-ignore) and the directory stays clean.
        assert current.stats().evictions == 1
        assert len(current) == 0
        assert current.get(fresh.fingerprint()) is None
        assert current.stats().ignored == 1

    def test_ignored_entries_are_not_revalidated_forever(self, tmp_path):
        """The satellite bug: a poisoned file used to be re-read and
        re-ignored on every miss; now the first detection unlinks it."""
        fingerprint, _ = self.populate(tmp_path)
        path = tmp_path / f"{fingerprint}.analysis"
        path.write_bytes(b"\x00poison")
        store = AnalysisStore(tmp_path)
        assert store.get(fingerprint) is None
        assert not path.exists()
        assert store.get(fingerprint) is None
        stats = store.stats()
        assert stats.ignored == 1  # second miss never re-validated anything
        assert stats.misses == 2
        assert stats.evictions == 1

    def test_mis_keyed_entry_is_ignored(self, tmp_path):
        fingerprint, _ = self.populate(tmp_path)
        other = language("aa").fingerprint()
        source = tmp_path / f"{fingerprint}.analysis"
        (tmp_path / f"{other}.analysis").write_bytes(source.read_bytes())
        store = AnalysisStore(tmp_path)
        assert store.get(other) is None
        assert store.stats().ignored == 1

    def test_tampered_payload_fails_plan_meta_check(self, tmp_path):
        fingerprint, method = self.populate(tmp_path)
        path = tmp_path / f"{fingerprint}.analysis"
        envelope = pickle.loads(path.read_bytes())
        envelope["plan_meta"] = {"states": 999, "transitions": 999}
        path.write_bytes(pickle.dumps(envelope))
        store = AnalysisStore(tmp_path)
        assert store.get(fingerprint) is None
        assert store.stats().ignored == 1

    def test_ignored_entry_is_recomputed_with_correct_results(self, tmp_path):
        fingerprint, _ = self.populate(tmp_path)
        (tmp_path / f"{fingerprint}.analysis").write_bytes(b"junk")
        database = generators.random_labelled_graph(4, 9, ALPHABET, seed=1)
        cache = LanguageCache(store=AnalysisStore(tmp_path))
        damaged = resilience_many([self.QUERY], database, cache=cache)
        pristine = resilience_many([self.QUERY], database)
        assert damaged == pristine
        assert cache.stats.classifications == 1
