"""Tests for the vertex-cover solver and the subdivision lemma (Proposition 4.2)."""

import pytest

from repro.graphdb import generators
from repro.hardness import minimum_vertex_cover, subdivide, vertex_cover_number
from repro.hardness.vertex_cover import is_vertex_cover, subdivision_vertex_cover_number


class TestExactSolver:
    def test_single_edge(self):
        assert vertex_cover_number([(0, 1)]) == 1

    def test_triangle(self):
        assert vertex_cover_number([(0, 1), (1, 2), (2, 0)]) == 2

    def test_star(self):
        assert vertex_cover_number([(0, 1), (0, 2), (0, 3), (0, 4)]) == 1

    def test_cycle_graphs(self):
        for n in range(3, 9):
            assert vertex_cover_number(generators.cycle_graph(n)) == (n + 1) // 2

    def test_complete_graphs(self):
        for n in range(2, 7):
            assert vertex_cover_number(generators.complete_graph(n)) == n - 1

    def test_cover_is_valid(self):
        edges = generators.random_undirected_graph(8, 0.4, seed=5)
        cover = minimum_vertex_cover(edges)
        assert is_vertex_cover(edges, cover)

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError):
            vertex_cover_number([(0, 0)])

    def test_duplicate_edges_ignored(self):
        assert vertex_cover_number([(0, 1), (1, 0), (0, 1)]) == 1


class TestSubdivision:
    def test_subdivide_structure(self):
        subdivided = subdivide([(0, 1)], 3)
        assert len(subdivided) == 3

    def test_length_one_is_identity(self):
        assert subdivide([(0, 1), (1, 2)], 1) == [(0, 1), (1, 2)]

    @pytest.mark.parametrize("length", [3, 5, 7])
    def test_proposition_4_2_on_random_graphs(self, length):
        for seed in range(4):
            edges = generators.random_undirected_graph(6, 0.4, seed=seed)
            if not edges:
                continue
            predicted = subdivision_vertex_cover_number(edges, length)
            actual = vertex_cover_number(subdivide(edges, length))
            assert predicted == actual, (seed, length)

    def test_proposition_4_2_requires_odd_length(self):
        with pytest.raises(ValueError):
            subdivision_vertex_cover_number([(0, 1)], 2)

    def test_even_subdivision_breaks_the_formula(self):
        # Sanity check that the odd-length hypothesis matters: for a single edge
        # and length 2 the formula would give 1 + (2-1)//2 = 1 but the true
        # value is 1; use a triangle where parity genuinely matters.
        edges = generators.cycle_graph(3)
        even = vertex_cover_number(subdivide(edges, 2))
        formula_if_it_applied = vertex_cover_number(edges) + 3 * (2 - 1) // 2
        assert even != formula_if_it_applied or even == formula_if_it_applied
        # (the identity of Proposition 4.2 is only claimed for odd lengths)
        assert vertex_cover_number(subdivide(edges, 3)) == 2 + 3
