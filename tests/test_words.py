"""Unit tests for word-level utilities (Section 2 notions)."""

import pytest

from repro.languages import words


class TestInfixes:
    def test_is_infix(self):
        assert words.is_infix("bc", "abcd")
        assert words.is_infix("", "abcd")
        assert words.is_infix("abcd", "abcd")
        assert not words.is_infix("ca", "abcd")

    def test_strict_infix_excludes_word_itself(self):
        assert not words.is_strict_infix("abcd", "abcd")
        assert words.is_strict_infix("abc", "abcd")
        assert words.is_strict_infix("", "a")

    def test_infixes_of_word(self):
        assert words.infixes("ab") == {"", "a", "b", "ab"}

    def test_strict_infixes(self):
        assert words.strict_infixes("ab") == {"", "a", "b"}

    def test_infixes_count_of_distinct_letter_word(self):
        # A word with all-distinct letters of length n has n(n+1)/2 + 1 infixes.
        word = "abcde"
        assert len(words.infixes(word)) == 5 * 6 // 2 + 1

    def test_prefixes_and_suffixes(self):
        assert words.prefixes("abc") == ["", "a", "ab", "abc"]
        assert words.suffixes("abc") == ["abc", "bc", "c", ""]
        assert words.is_strict_prefix("ab", "abc")
        assert not words.is_strict_prefix("abc", "abc")
        assert words.is_strict_suffix("bc", "abc")
        assert not words.is_strict_suffix("abc", "abc")


class TestMirror:
    def test_mirror_word(self):
        assert words.mirror("abc") == "cba"
        assert words.mirror("") == ""

    def test_mirror_involution(self):
        assert words.mirror(words.mirror("abca")) == "abca"

    def test_mirror_language(self):
        assert words.mirror_language({"ab", "cd"}) == {"ba", "dc"}


class TestRepeatedLetters:
    def test_has_repeated_letter(self):
        assert words.has_repeated_letter("aa")
        assert words.has_repeated_letter("abca")
        assert not words.has_repeated_letter("abc")
        assert not words.has_repeated_letter("")

    def test_decompositions_of_aa(self):
        decompositions = list(words.repeated_letter_decompositions("aa"))
        assert decompositions == [("", "a", "", "")]

    def test_decompositions_of_abca(self):
        decompositions = set(words.repeated_letter_decompositions("abca"))
        assert ("", "a", "bc", "") in decompositions
        assert len(decompositions) == 1

    def test_maximal_gap_prefers_larger_gap(self):
        # Definition 6.4: the gap is maximised first.
        best = words.maximal_gap_words({"aa", "abca"})
        assert all(len(gamma) == 2 for _, _, _, gamma, _ in best)
        assert {entry[0] for entry in best} == {"abca"}

    def test_maximal_gap_breaks_ties_by_length(self):
        best = words.maximal_gap_words({"axa", "bxbc"})
        # Both have gap 1; bxbc is longer so it wins.
        assert {entry[0] for entry in best} == {"bxbc"}

    def test_maximal_gap_empty_when_no_repetition(self):
        assert words.maximal_gap_words({"abc", "de"}) == []


class TestAlphabetHelpers:
    def test_alphabet_of(self):
        assert words.alphabet_of(["ab", "bc"]) == frozenset("abc")

    def test_concatenate_languages(self):
        assert words.concatenate_languages({"a", "b"}, {"c"}) == {"ac", "bc"}

    def test_words_up_to_length(self):
        generated = list(words.words_up_to_length("ab", 2))
        assert set(generated) == {"", "a", "b", "aa", "ab", "ba", "bb"}
        # epsilon first, then length 1, then length 2
        assert generated[0] == ""
