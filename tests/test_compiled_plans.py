"""Tests for the compiled-plan evaluation subsystem.

Covers the :class:`CompiledAutomaton` query plans, the cached
:class:`DatabaseIndex`, the plan-based RPQ evaluator, and the copy-free overlay
exact search — including the property-based cross-check against the naive
subset-enumeration baseline required for trusting the overlay rewrite.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphdb import BagGraphDatabase, Fact, GraphDatabase, generators
from repro.languages import CompiledAutomaton, Language, compile_automaton
from repro.resilience import (
    resilience_brute_force,
    resilience_exact,
    resilience_exact_reference,
    verify_contingency_set,
)
from repro.rpq.evaluation import find_l_walk, find_l_walk_ids, is_walk, walk_label
from repro.rpq.matching import enumerate_matches


class TestCompiledAutomaton:
    def test_plan_cache_shares_equal_automata(self):
        first = Language.from_regex("ab|ba").automaton
        second = Language.from_regex("ab|ba").automaton
        assert first is not second
        assert compile_automaton(first) is compile_automaton(second)

    def test_closures_match_epsilon_closure(self):
        automaton = Language.from_regex("a(b|c)*d").automaton
        plan = compile_automaton(automaton)
        for state in plan.trimmed.states:
            assert set(plan.closure(state)) == set(plan.trimmed.epsilon_closure([state]))
        assert set(plan.initial_closure) == set(
            plan.trimmed.epsilon_closure(plan.trimmed.initial)
        )

    def test_steps_index_matches_transitions(self):
        automaton = Language.from_regex("ab|ac|bc").automaton
        plan = compile_automaton(automaton)
        for (state, label), targets in plan.steps.items():
            for closed in targets:
                # Every indexed step is justified by a letter transition
                # followed by epsilon moves.
                assert any(
                    source == state and label == transition_label and closed in plan.closure(target)
                    for source, transition_label, target in plan.trimmed.letter_transitions
                )

    def test_empty_and_epsilon_flags(self):
        assert compile_automaton(Language.from_words([]).automaton).is_empty
        assert compile_automaton(Language.from_regex("ε|a").automaton).accepts_empty
        plan = compile_automaton(Language.from_regex("ab").automaton)
        assert not plan.is_empty
        assert not plan.accepts_empty

    def test_transitions_by_label_covers_untrimmed_automaton(self):
        automaton = Language.from_regex("ax*b").automaton
        plan = compile_automaton(automaton)
        expected = {}
        for source, label, target in automaton.letter_transitions:
            expected.setdefault(label, set()).add((source, target))
        assert {label: set(pairs) for label, pairs in plan.transitions_by_label.items()} == expected


class TestDatabaseIndex:
    def test_index_is_cached_on_the_database(self):
        database = generators.random_labelled_graph(5, 10, "ab", seed=0)
        assert database.index() is database.index()

    def test_facts_sorted_with_dense_ids(self):
        database = generators.random_labelled_graph(5, 10, "ab", seed=1)
        index = database.index()
        assert list(index.facts) == sorted(database.facts, key=repr)
        assert all(index.fact_ids[fact] == position for position, fact in enumerate(index.facts))

    def test_adjacency_lists_match_facts(self):
        database = generators.random_labelled_graph(6, 12, "abc", seed=2)
        index = database.index()
        for node, ids in index.outgoing_ids.items():
            assert all(index.facts[fact_id].source == node for fact_id in ids)
        for (node, label), ids in index.outgoing_by_label.items():
            for fact_id in ids:
                fact = index.facts[fact_id]
                assert fact.source == node and fact.label == label
        assert set(index.nodes) == database.nodes

    def test_bag_index_carries_multiplicities(self):
        bag = generators.random_bag_database(4, 6, "ab", seed=3, max_multiplicity=5)
        index = bag.index()
        assert index.multiplicities is not None
        for fact_id, fact in enumerate(index.facts):
            assert index.multiplicities[fact_id] == bag.multiplicity(fact)

    def test_cached_adjacency_views(self):
        database = generators.random_labelled_graph(5, 9, "ab", seed=4)
        assert database.outgoing() is database.outgoing()
        assert database.incoming() is database.incoming()
        for node, facts in database.outgoing().items():
            assert all(fact.source == node for fact in facts)

    def test_bag_set_view_is_cached(self):
        bag = generators.random_bag_database(4, 6, "ab", seed=5)
        assert bag.database is bag.database


class TestPlanBasedEvaluation:
    def test_walks_are_valid_and_shortest(self):
        for expression in ["ab", "aa", "ab|ba", "ax*b", "abc|be"]:
            language = Language.from_regex(expression)
            alphabet = "".join(sorted(language.alphabet))
            for seed in range(4):
                database = generators.random_labelled_graph(5, 10, alphabet, seed=seed)
                walk = find_l_walk(language.automaton, database)
                if walk is None:
                    continue
                assert is_walk(walk)
                assert walk_label(walk) in language
                if len(walk) > 1:
                    shorter = enumerate_matches(language, database, max_walk_length=len(walk) - 1)
                    assert not shorter, (expression, seed)

    def test_accepts_compiled_plan_directly(self):
        language = Language.from_regex("ab")
        plan = compile_automaton(language.automaton)
        assert isinstance(plan, CompiledAutomaton)
        database = GraphDatabase.from_edges([("u", "a", "v"), ("v", "b", "w")])
        assert find_l_walk(plan, database) == find_l_walk(language.automaton, database)

    def test_masked_search_matches_materialized_removal(self):
        language = Language.from_regex("ab|ba")
        database = generators.random_labelled_graph(5, 10, "ab", seed=7)
        plan = compile_automaton(language.automaton)
        index = database.index()
        for removed_id in range(len(index.facts)):
            mask = bytearray(len(index.facts))
            mask[removed_id] = 1
            masked = find_l_walk_ids(plan, index, mask)
            materialized = find_l_walk(
                language.automaton, database.remove([index.facts[removed_id]])
            )
            if masked is None:
                assert materialized is None
            else:
                assert materialized is not None
                assert len(masked) == len(materialized)
                assert removed_id not in masked


class TestOverlayExactSearch:
    def test_overlay_matches_reference_nodes_explored(self):
        # The overlay search must explore exactly the same branch-and-bound
        # tree as the materializing reference implementation.
        for expression in ["aa", "ab|ba", "axb|cxd", "abc|bcd"]:
            language = Language.from_regex(expression)
            alphabet = "".join(sorted(language.alphabet))
            for seed in range(4):
                database = generators.random_labelled_graph(5, 11, alphabet, seed=seed)
                fast = resilience_exact(language, database)
                reference = resilience_exact_reference(language, database)
                assert fast.value == reference.value, (expression, seed)
                assert fast.contingency_set == reference.contingency_set, (expression, seed)
                assert (
                    fast.details["nodes_explored"] == reference.details["nodes_explored"]
                ), (expression, seed)

    def test_overlay_matches_reference_on_bags(self):
        language = Language.from_regex("ab|ba")
        for seed in range(4):
            bag = generators.random_bag_database(4, 7, "ab", seed=seed, max_multiplicity=4)
            fast = resilience_exact(language, bag)
            reference = resilience_exact_reference(language, bag)
            assert fast.value == reference.value, seed
            assert fast.details["nodes_explored"] == reference.details["nodes_explored"], seed

    def test_nodes_explored_is_deterministic(self):
        language = Language.from_regex("aa")
        database = generators.random_labelled_graph(6, 14, "a", seed=1)
        counts = {resilience_exact(language, database).details["nodes_explored"] for _ in range(3)}
        assert len(counts) == 1

    def test_max_nodes_guard_still_applies(self):
        from repro.exceptions import SearchBudgetExceeded

        database = generators.random_labelled_graph(6, 14, "a", seed=1)
        with pytest.raises(SearchBudgetExceeded):
            resilience_exact(Language.from_regex("aa"), database, max_nodes=1)


_EXPRESSIONS = ["ab", "aa", "ab|ba", "a|bb", "abc|be"]


def _database_from_edges(edges: list[tuple[int, int, str]]) -> GraphDatabase:
    return GraphDatabase.from_edges(
        (f"n{source}", label, f"n{target}") for source, target, label in edges
    )


@st.composite
def _small_instances(draw):
    expression = draw(st.sampled_from(_EXPRESSIONS))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=3),
                st.sampled_from("abc"),
            ),
            min_size=0,
            max_size=7,
            unique=True,
        )
    )
    return expression, edges


class TestPropertyBasedCrossCheck:
    @settings(max_examples=60, deadline=None)
    @given(_small_instances())
    def test_overlay_matches_brute_force_on_sets(self, instance):
        expression, edges = instance
        language = Language.from_regex(expression)
        database = _database_from_edges(edges)
        fast = resilience_exact(language, database)
        slow = resilience_brute_force(language, database)
        assert fast.value == slow.value
        assert verify_contingency_set(language, database, fast)

    @settings(max_examples=40, deadline=None)
    @given(_small_instances(), st.integers(min_value=1, max_value=3))
    def test_overlay_matches_brute_force_on_bags(self, instance, multiplier):
        expression, edges = instance
        language = Language.from_regex(expression)
        database = _database_from_edges(edges)
        bag = BagGraphDatabase(
            {
                fact: 1 + ((index * multiplier) % 3)
                for index, fact in enumerate(sorted(database.facts, key=repr))
            }
        )
        if not bag.facts:
            return
        fast = resilience_exact(language, bag)
        slow = resilience_brute_force(language, bag)
        assert fast.value == slow.value
        assert verify_contingency_set(language, bag, fast)
