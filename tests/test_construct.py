"""Tests for the generic gadget constructions and hardness drivers (Theorems 5.3 and 6.1)."""

import pytest

from repro.exceptions import GadgetNotAvailableError
from repro.hardness import construct, verify_gadget
from repro.languages import Language
from repro.languages.four_legged import FourLeggedWitness


class TestChainGadget:
    @pytest.mark.parametrize(
        "expression, letter, gamma, delta",
        [
            ("aba", "a", "b", ""),
            ("abca", "a", "bc", ""),
            ("abcad", "a", "bc", "d"),
            ("axya|ab", "a", "xy", ""),
            ("aab", "a", "", "b"),
            ("aabc", "a", "", "bc"),
        ],
    )
    def test_lemma_6_6_chain(self, expression, letter, gamma, delta):
        gadget = construct.repeated_letter_chain_gadget(letter, gamma, delta)
        verification = verify_gadget(Language.from_regex(expression), gadget)
        assert verification.valid, verification.reason
        assert verification.path_length == 5

    def test_chain_rejects_both_empty(self):
        from repro.exceptions import GadgetError

        with pytest.raises(GadgetError):
            construct.repeated_letter_chain_gadget("a", "", "")


class TestFourLeggedGadgets:
    @pytest.mark.parametrize(
        "expression", ["axb|cxd", "aib|cid|eif", "axyb|cxyd", "be*c|de*f"]
    )
    def test_case_1(self, expression):
        language = Language.from_regex(expression)
        certificate = construct.four_legged_hardness_gadget(language)
        assert certificate.verification.valid
        assert "case 1" in certificate.provenance

    @pytest.mark.parametrize("expression", ["axb|cxd|cxb", "aaaa", "aaaaa", "axyb|cxyd|cxyb"])
    def test_case_2(self, expression):
        language = Language.from_regex(expression)
        certificate = construct.four_legged_hardness_gadget(language)
        assert certificate.verification.valid
        assert "case 2" in certificate.provenance

    def test_rejects_non_four_legged(self):
        with pytest.raises(GadgetNotAvailableError):
            construct.four_legged_hardness_gadget(Language.from_regex("ab|bc"))

    def test_path_lengths_are_odd(self):
        for expression in ["axb|cxd", "aaaa"]:
            certificate = construct.four_legged_hardness_gadget(Language.from_regex(expression))
            assert certificate.path_length % 2 == 1


class TestRepeatedLetterDriver:
    @pytest.mark.parametrize(
        "expression",
        ["aa", "aaa", "aab", "aba", "abca", "abcad", "aab|dab", "baa", "abab".replace("ab", "ba"), "aaaa", "abcb"],
    )
    def test_theorem_6_1_produces_verified_certificates(self, expression):
        language = Language.from_regex(expression)
        certificate = construct.repeated_letter_hardness_gadget(language)
        assert certificate.verification.valid
        assert certificate.path_length % 2 == 1
        # The gadget is verified against the (possibly mirrored) language.
        if certificate.mirrored:
            assert certificate.gadget_language.equivalent_to(language.mirror())
        else:
            assert certificate.gadget_language.equivalent_to(language.infix_free())

    def test_requires_finite_language(self):
        with pytest.raises(GadgetNotAvailableError):
            construct.repeated_letter_hardness_gadget(Language.from_regex("ax*b"))

    def test_requires_repeated_letter(self):
        with pytest.raises(GadgetNotAvailableError):
            construct.repeated_letter_hardness_gadget(Language.from_regex("abc"))

    def test_known_open_construction_gap_is_reported(self):
        # The Figure 12 leaf (words a x eta y a and y a x with x, y != a) is the
        # one construction we could not reconstruct and verify; the driver must
        # fail loudly rather than return an unverified gadget.
        with pytest.raises(GadgetNotAvailableError):
            construct.repeated_letter_hardness_gadget(Language.from_regex("abca|cab"))


class TestMasterDriver:
    @pytest.mark.parametrize(
        "expression",
        ["aa", "aaa", "aaaa", "axb|cxd", "ab|bc|ca", "abcd|be|ef", "abcd|bef", "aba|bab", "b(aa)*d", "e*(a|c)e*(a|d)e*"],
    )
    def test_hardness_gadget_master(self, expression):
        certificate = construct.hardness_gadget(Language.from_regex(expression))
        assert certificate.verification.valid
        assert certificate.path_length % 2 == 1

    def test_master_rejects_tractable_language(self):
        with pytest.raises(GadgetNotAvailableError):
            construct.hardness_gadget(Language.from_regex("ax*b"))
