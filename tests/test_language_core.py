"""Unit tests for the Language façade."""

import pytest

from repro.exceptions import NotFiniteError
from repro.languages import Language


class TestConstruction:
    def test_from_regex(self):
        language = Language.from_regex("ab|cd")
        assert "ab" in language
        assert "cd" in language
        assert "ac" not in language

    def test_from_words(self):
        language = Language.from_words(["ab", "cd"])
        assert language.words() == {"ab", "cd"}
        assert language.is_finite()

    def test_from_words_with_epsilon(self):
        language = Language.from_words(["", "a"])
        assert language.contains_epsilon()

    def test_alphabet(self):
        assert Language.from_regex("ab|cd").alphabet == frozenset("abcd")

    def test_extra_alphabet_letters(self):
        language = Language.from_regex("ab", alphabet="abz")
        assert "z" in language.alphabet


class TestBasicQueries:
    def test_finite_vs_infinite(self):
        assert Language.from_regex("ab|cd").is_finite()
        assert not Language.from_regex("ax*b").is_finite()

    def test_words_raises_for_infinite(self):
        with pytest.raises(NotFiniteError):
            Language.from_regex("ax*b").words()

    def test_words_up_to_length(self):
        assert Language.from_regex("ax*b").words_up_to_length(3) == {"ab", "axb"}

    def test_is_empty(self):
        assert Language.from_words([]).is_empty()
        assert not Language.from_regex("a").is_empty()

    def test_shortest_word(self):
        assert Language.from_regex("ax*b").shortest_word() == "ab"

    def test_max_word_length(self):
        assert Language.from_regex("ab|abcd").max_word_length() == 4


class TestComparisons:
    def test_equivalent_to(self):
        assert Language.from_regex("ab|ad").equivalent_to(Language.from_regex("a(b|d)"))

    def test_equality_operator(self):
        assert Language.from_regex("ab|ad") == Language.from_regex("a(b|d)")
        assert Language.from_regex("ab") != Language.from_regex("ad")

    def test_subset_of(self):
        assert Language.from_regex("ab").subset_of(Language.from_regex("ab|ad"))
        assert not Language.from_regex("ab|ad").subset_of(Language.from_regex("ab"))


class TestTransformations:
    def test_mirror_finite(self):
        mirrored = Language.from_regex("abc|de").mirror()
        assert mirrored.words() == {"cba", "ed"}

    def test_mirror_infinite(self):
        mirrored = Language.from_regex("ax*b").mirror()
        assert "bxxa" in mirrored
        assert "axb" not in mirrored

    def test_restrict_to_letters(self):
        restricted = Language.from_regex("ab|cd|ax").restrict_to_letters("abx")
        assert restricted.words() == {"ab", "ax"}

    def test_infix_free_shortcut(self):
        assert Language.from_regex("abbc|bb").infix_free().words() == {"bb"}

    def test_has_repeated_letter_word(self):
        assert Language.from_regex("abca|cab").has_repeated_letter_word()
        assert not Language.from_regex("abc|cab").has_repeated_letter_word()


class TestDelegations:
    def test_is_local_delegation(self):
        assert Language.from_regex("ax*b").is_local()
        assert not Language.from_regex("aa").is_local()

    def test_is_star_free_delegation(self):
        assert Language.from_regex("abc").is_star_free()
        assert not Language.from_regex("b(aa)*d").is_star_free()

    def test_is_four_legged_delegation(self):
        assert Language.from_regex("axb|cxd").is_four_legged()
        assert not Language.from_regex("ab|bc").is_four_legged()

    def test_chain_delegations(self):
        assert Language.from_regex("ab|bc").is_bipartite_chain_language()
        assert Language.from_regex("ab|bc|ca").is_chain_language()
        assert not Language.from_regex("ab|bc|ca").is_bipartite_chain_language()

    def test_one_dangling_delegation(self):
        assert Language.from_regex("abc|be").one_dangling_decomposition() is not None
        assert Language.from_regex("aa").one_dangling_decomposition() is None

    def test_neutral_letters_delegation(self):
        assert Language.from_regex("e*ae*|e*be*").neutral_letters() == frozenset("e")

    def test_repr_and_str(self):
        language = Language.from_regex("ab|cd")
        assert "ab|cd" in repr(language)
        assert str(language) == "ab|cd"
