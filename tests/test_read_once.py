"""Tests for read-once epsilon-NFAs (Definition 3.15, Lemma 3.17, Appendix A.2)."""

import pytest

from repro.exceptions import NotLocalError
from repro.languages import Language, read_once
from repro.languages.automata import EpsilonNFA


class TestConversions:
    def test_local_dfa_to_read_once_preserves_language(self):
        language = Language.from_regex("ab|ad|cd")
        local_dfa = language.local_overapproximation()
        ro = read_once.local_dfa_to_read_once(local_dfa)
        assert ro.is_read_once()
        for word in ["ab", "ad", "cd", "cb", "a", ""]:
            assert local_dfa.accepts(word) == ro.accepts(word)

    def test_read_once_to_local_dfa(self):
        language = Language.from_regex("ax*b")
        ro = read_once.read_once_automaton(language)
        back = read_once.read_once_to_local_dfa(ro)
        assert back.is_dfa()
        for word in ["ab", "axb", "axxb", "a", "b"]:
            assert ro.accepts(word) == back.accepts(word)

    def test_rejects_non_local_dfa(self):
        non_local = EpsilonNFA.build(
            ["q0", "q1", "q2"], ["q0"], ["q2"], [("q0", "a", "q1"), ("q1", "a", "q2")]
        )
        with pytest.raises(NotLocalError):
            read_once.local_dfa_to_read_once(non_local)

    def test_rejects_non_read_once(self):
        non_ro = EpsilonNFA.build(
            ["q0", "q1", "q2"], ["q0"], ["q2"], [("q0", "a", "q1"), ("q1", "a", "q2")]
        )
        with pytest.raises(NotLocalError):
            read_once.read_once_to_local_dfa(non_ro)


class TestReadOnceAutomaton:
    @pytest.mark.parametrize("expression", ["ax*b", "ab|ad|cd", "abc|abd", "a|b"])
    def test_lemma_3_17_round_trip(self, expression):
        language = Language.from_regex(expression)
        ro = read_once.read_once_automaton(language)
        assert ro.is_read_once()
        assert Language.from_automaton(ro).equivalent_to(language)

    def test_raises_for_non_local_language(self):
        with pytest.raises(NotLocalError):
            read_once.read_once_automaton(Language.from_regex("aa"))

    def test_unchecked_returns_overapproximation(self):
        # For a non-local language the unchecked variant recognizes the local
        # overapproximation, which is a superset.
        language = Language.from_regex("aa")
        ro = read_once.read_once_automaton_unchecked(language)
        assert ro.is_read_once()
        assert ro.accepts("aa")
        assert ro.accepts("aaa")


class TestLemmaA1:
    def test_no_read_once_dfa_for_ab_ad_cd(self):
        # Lemma A.1: epsilon transitions are essential -- any read-once automaton
        # without epsilon transitions accepting ab, ad, cd also accepts cb.
        language = Language.from_regex("ab|ad|cd")
        ro = read_once.read_once_automaton(language)
        assert ro.epsilon_transitions, "the RO automaton for ab|ad|cd must use epsilon transitions"

    def test_read_once_dfa_would_accept_cb(self):
        # Build the only possible read-once letter-transition skeleton and check
        # it accepts cb, reproducing the argument of Lemma A.1.
        skeleton = EpsilonNFA.build(
            ["s", "m", "f"],
            ["s"],
            ["f"],
            [("s", "a", "m"), ("m", "b", "f"), ("m", "d", "f"), ("s", "c", "m")],
        )
        assert skeleton.is_read_once()
        assert skeleton.accepts("cb")
