"""Traffic generator and chaos soak harness tests.

What this file pins, beyond the conformance matrix's ``soak-replay`` cell:

* **determinism** — (hypothesis) equal profiles generate identical traces,
  databases included; different seeds generate different traffic;
* **traffic shape** — monotone bursty arrival offsets, zipf-skewed query
  popularity, and the budget/deadline/priority knobs doing what they say;
* **chaos soak end-to-end** — a seeded soak with a mid-round node kill, a
  poison workload, a slow workload and an admission burst completes with
  zero invariant violations, recovers within bound, logs replayable JSONL,
  and the whole run is replayable from its seed (same collected outcomes,
  same status counts);
* **invariant monitor teeth** — misconfigured chaos (a kill that can never
  fire, a schedule beyond the trace) fails loudly instead of passing
  vacuously;
* **metrics under sustained load** — histogram quantiles stay conservative
  (never underestimate), snapshots round-trip through ``from_dict``, and
  ``in_flight`` returns to zero once a soak round drains;
* **fault helpers** — the shared ``tests/faults.py`` poison/slow languages
  behave as advertised (poison reduces to ``os._exit``; slow pickles into a
  delayed but equivalent language).
"""

from __future__ import annotations

import asyncio
import json
import os
import pickle
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from faults import (
    ChaosHttpNodeLauncher,
    drain_with_kill,
    poison_workload,
    slow_language,
    slow_workload,
)
from leak_sanitizer import LeakTracker
from repro.exceptions import ReproError
from repro.languages import Language
from repro.service import (
    ADMISSION_REJECTED,
    ERROR,
    OK,
    AsyncResilienceServer,
    HttpExchange,
    LanguageCache,
    LatencyHistogram,
    LocalExchange,
    NodeManager,
    ResilienceServer,
    RetryPolicy,
    resilience_serve,
)
from repro.traffic import (
    BURST,
    CORRUPT,
    DISCONNECT,
    KILL,
    POISON,
    REFUSED,
    SLOW,
    STALL,
    ChaosEvent,
    ChaosSchedule,
    DatabaseSpec,
    HARD_QUERIES,
    InvariantViolation,
    SoakRunner,
    TrafficProfile,
    generate_traffic,
)


def small_profile(seed: int = 7, requests: int = 8, **overrides) -> TrafficProfile:
    """A fast profile: small databases, short trace, no deadlines."""
    overrides.setdefault(
        "databases",
        (
            DatabaseSpec(num_nodes=5, num_edges=12, alphabet="abxy"),
            DatabaseSpec(num_nodes=4, num_edges=9, alphabet="abx", bag_copies=2),
        ),
    )
    return TrafficProfile(seed=seed, requests=requests, **overrides)


def by_index(outcomes):
    return sorted(outcomes, key=lambda outcome: outcome.index)


# ------------------------------------------------------------------ generator


class TestGenerator:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**20))
    def test_same_seed_identical_trace_different_seed_differs(self, seed):
        trace = generate_traffic(small_profile(seed=seed, requests=6))
        again = generate_traffic(small_profile(seed=seed, requests=6))
        assert trace.requests == again.requests
        assert trace.database_fingerprints() == again.database_fingerprints()
        other = generate_traffic(small_profile(seed=seed + 1, requests=6))
        assert trace.requests != other.requests

    def test_offsets_are_monotone_open_loop_arrivals(self):
        trace = generate_traffic(small_profile(seed=3, requests=40))
        offsets = [request.offset for request in trace.requests]
        assert offsets == sorted(offsets)
        assert all(offset >= 0 for offset in offsets)
        assert [request.seq for request in trace.requests] == list(range(40))

    def test_query_popularity_is_zipf_skewed(self):
        trace = generate_traffic(small_profile(seed=5, requests=200))
        counts = sorted(trace.query_counts().values(), reverse=True)
        mean = sum(counts) / len(counts)
        assert counts[0] >= 2 * mean, (
            f"hottest query ({counts[0]}) should dominate the mean ({mean:.1f})"
        )

    def test_budget_knobs_mark_every_spec(self):
        profile = small_profile(
            seed=11, requests=30, tight_budget_fraction=1.0, budget_fraction=0.0
        )
        trace = generate_traffic(profile)
        for request in trace.requests:
            for spec in request.workload:
                if spec.query in HARD_QUERIES:
                    assert spec.max_nodes == 1
                else:
                    assert spec.max_nodes == profile.budget_nodes
        assert any(
            spec.max_nodes == 1
            for request in trace.requests
            for spec in request.workload
        ), "a 30-request trace should sample at least one NP-hard query"

    def test_deadline_fraction_one_stamps_every_request(self):
        trace = generate_traffic(
            small_profile(seed=2, requests=10, deadline_fraction=1.0)
        )
        assert all(request.deadline == 30.0 for request in trace.requests)

    def test_priorities_and_weights_come_from_the_profile(self):
        profile = small_profile(seed=4, requests=50)
        trace = generate_traffic(profile)
        assert {request.priority for request in trace.requests} <= set(
            profile.priorities
        )
        assert {request.weight for request in trace.requests} <= set(profile.weights)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"requests": 0},
            {"catalogue": ()},
            {"workload_size": (0, 3)},
            {"burst_size": (4, 2)},
            {"burst_rate": 0.0},
            {"deadline_fraction": 1.5},
        ],
    )
    def test_profile_validation(self, overrides):
        with pytest.raises(ValueError):
            small_profile(**overrides)


# ---------------------------------------------------------------------- chaos


class TestChaosSchedule:
    def test_event_validation(self):
        with pytest.raises(ReproError):
            ChaosEvent(round=0, kind="meteor")
        with pytest.raises(ReproError):
            ChaosEvent(round=-1, kind=KILL)
        with pytest.raises(ReproError):
            ChaosEvent(round=0, kind=KILL, after_outcomes=0)
        with pytest.raises(ReproError):
            ChaosEvent(round=0, kind=BURST, count=0)
        with pytest.raises(ReproError):
            ChaosEvent(round=0, kind=POISON)  # payload kinds need a workload

    def test_schedule_round_lookup(self):
        schedule = ChaosSchedule(
            (
                ChaosEvent(round=1, kind=KILL),
                ChaosEvent(round=0, kind=BURST, count=2),
                ChaosEvent(round=1, kind=SLOW, workload=slow_workload(["aa"])),
            )
        )
        assert len(schedule) == 3
        assert schedule.last_round() == 1
        assert [event.kind for event in schedule.for_round(1)] == [KILL, SLOW]
        assert schedule.kinds() == {KILL: 1, BURST: 1, SLOW: 1}


# ----------------------------------------------------------------------- soak


class TestSoak:
    def test_chaos_soak_completes_and_replays_from_seed(self, tmp_path):
        """The flagship: bursty zipf traffic over a 2-node fleet survives a
        mid-round node kill, a poison workload, a slow workload and an
        admission burst with zero invariant violations — and the whole run
        is replayable from the seed."""
        profile = small_profile(seed=11, requests=12)

        # Payload expressions must not be equivalent to any catalogue query
        # (node caches key languages by equivalence, so an equivalent poison
        # would be substituted by an already-cached clean plan) and payloads
        # need >= 2 queries (single-query workloads serve serially in the
        # node's parent process and never cross a pickle boundary).
        def chaos():
            return ChaosSchedule(
                (
                    ChaosEvent(
                        round=0,
                        kind=POISON,
                        workload=poison_workload(["xxayy", "yybxx"]),
                    ),
                    ChaosEvent(round=1, kind=KILL, after_outcomes=2),
                    ChaosEvent(
                        round=1,
                        kind=SLOW,
                        workload=slow_workload(["yxayx", "xybyx"], seconds=0.02),
                    ),
                    ChaosEvent(round=2, kind=BURST, count=3),
                )
            )

        log_path = tmp_path / "soak.jsonl"

        def soak():
            runner = SoakRunner(
                generate_traffic(profile),
                nodes=2,
                max_workers=2,
                chaos=chaos(),
                requests_per_round=4,
                keep_outcomes=True,
                log_path=log_path,
            )
            report = runner.run()
            return report, [by_index(outcomes) for outcomes in runner.collected]

        report, collected = soak()
        assert report.violations == () and report.leaks == ()
        assert report.requests == 12 and report.rounds == 3
        assert report.chaos == {
            "kills": 1,
            "heals": 1,
            "poison_workloads": 1,
            "slow_workloads": 1,
            "burst_workloads": 3,
            "network_faults": 0,
            "degraded_serves": 0,
        }
        assert report.by_status.get(ERROR, 0) >= 1, "poison must surface as error"
        assert report.recovery["max_rounds"] <= report.recovery["bound"]
        assert report.admission["final_in_flight"] == 0
        assert report.parity_checked == 12, "every traffic request held parity"
        assert report.throughput_rps > 0

        records = [
            json.loads(line) for line in log_path.read_text().splitlines()
        ]
        kinds = {record["type"] for record in records}
        assert {"chaos", "kill-fired", "outcome", "round", "heal"} <= kinds
        poison_records = [
            record
            for record in records
            if record["type"] == "outcome" and record["kind"] == POISON
        ]
        assert poison_records and all(
            record["status"] == ERROR for record in poison_records
        )

        replay_report, replay_collected = soak()
        assert replay_collected == collected, "collected outcomes must replay"
        assert replay_report.by_status == report.by_status
        assert replay_report.seed == report.seed == 11

    def test_http_soak_with_network_chaos_is_replayable(self, tmp_path):
        """The HTTP fleet under network chaos: a refused window, a mid-stream
        disconnect, a stall, a corrupt payload and a node kill — zero
        invariant violations, full parity, bounded recovery, and the whole
        run replay-identical across two same-seed runs."""
        profile = small_profile(seed=13, requests=12)

        def chaos():
            return ChaosSchedule(
                (
                    ChaosEvent(round=0, kind=REFUSED, count=2),
                    ChaosEvent(round=1, kind=DISCONNECT, after_outcomes=1),
                    ChaosEvent(round=1, kind=KILL, after_outcomes=2),
                    ChaosEvent(round=2, kind=STALL),
                    ChaosEvent(round=2, kind=CORRUPT, after_outcomes=0),
                )
            )

        def build_exchange():
            launcher = ChaosHttpNodeLauncher(
                max_workers=2,
                request_timeout=10.0,
                retry=RetryPolicy(attempts=3, base_delay=0.0),
            )
            return HttpExchange(nodes=2, manager=NodeManager(launcher))

        log_path = tmp_path / "http-soak.jsonl"

        def soak():
            runner = SoakRunner(
                generate_traffic(profile),
                exchange=build_exchange(),
                chaos=chaos(),
                requests_per_round=4,
                keep_outcomes=True,
                log_path=log_path,
            )
            report = runner.run()
            return report, [by_index(outcomes) for outcomes in runner.collected]

        report, collected = soak()
        assert report.violations == () and report.leaks == ()
        assert report.chaos["network_faults"] == 4
        assert report.chaos["kills"] == 1
        assert report.parity_checked == 12, (
            "every traffic request held parity through the network chaos"
        )
        assert report.recovery["max_rounds"] <= report.recovery["bound"]
        assert report.admission["final_in_flight"] == 0
        assert "degraded_serves" in report.chaos

        records = [json.loads(line) for line in log_path.read_text().splitlines()]
        fault_records = [r for r in records if r["type"] == "network-fault"]
        assert {r["kind"] for r in fault_records} == {
            REFUSED,
            DISCONNECT,
            STALL,
            CORRUPT,
        }

        replay_report, replay_collected = soak()
        assert replay_collected == collected, "collected outcomes must replay"
        assert replay_report.by_status == report.by_status

    def test_http_transport_builds_its_own_fleet(self):
        trace = generate_traffic(small_profile(seed=3, requests=4))
        runner = SoakRunner(
            trace, transport="http", nodes=2, requests_per_round=4
        )
        report = runner.run()
        assert report.parity_checked == 4
        assert report.admission["final_in_flight"] == 0

    def test_http_transport_rejects_a_shared_cache(self):
        trace = generate_traffic(small_profile(seed=3, requests=2))
        with pytest.raises(ReproError, match="cache"):
            SoakRunner(trace, transport="http", cache=LanguageCache())

    def test_unknown_transport_is_rejected(self):
        trace = generate_traffic(small_profile(seed=3, requests=2))
        with pytest.raises(ReproError, match="transport"):
            SoakRunner(trace, transport="carrier-pigeon")

    def test_network_chaos_needs_a_fault_capable_handle(self):
        """Plain HTTP handles have no fault hook; the soak fails loudly
        instead of silently skipping the scheduled fault."""
        trace = generate_traffic(small_profile(seed=3, requests=2))
        chaos = ChaosSchedule((ChaosEvent(round=0, kind=REFUSED, count=1),))
        runner = SoakRunner(
            trace, transport="http", requests_per_round=2, chaos=chaos
        )
        with pytest.raises(ReproError, match="fault-capable"):
            runner.run()

    def test_soak_matches_explicit_serial_reference(self):
        trace = generate_traffic(small_profile(seed=3, requests=4))
        runner = SoakRunner(trace, nodes=2, requests_per_round=4, keep_outcomes=True)
        report = runner.run()
        assert report.parity_checked == 4
        for request, outcomes in zip(trace.requests, runner.collected):
            reference = resilience_serve(
                request.workload,
                trace.databases[request.database_key],
                parallel=False,
                cache=LanguageCache(canonical=False),
            )
            assert by_index(outcomes) == reference

    def test_burst_past_queue_depth_rejects_structurally(self):
        trace = generate_traffic(small_profile(seed=9, requests=2))
        chaos = ChaosSchedule((ChaosEvent(round=0, kind=BURST, count=12),))
        runner = SoakRunner(
            trace,
            nodes=2,
            chaos=chaos,
            requests_per_round=2,
            max_queue_depth=2,
            verify_parity=False,
        )
        report = runner.run()
        assert report.by_status.get(ADMISSION_REJECTED, 0) > 0
        assert report.admission["rejected"] > 0
        assert report.admission["final_in_flight"] == 0

    def test_soak_with_leak_tracker_reports_clean(self):
        trace = generate_traffic(small_profile(seed=1, requests=2))
        tracker = LeakTracker(settle=10.0)
        report = SoakRunner(
            trace, nodes=2, requests_per_round=2, leak_tracker=tracker
        ).run()
        assert report.leaks == ()

    def test_kill_that_can_never_fire_is_a_violation(self):
        trace = generate_traffic(small_profile(seed=2, requests=2))
        chaos = ChaosSchedule(
            (ChaosEvent(round=0, kind=KILL, after_outcomes=10**6),)
        )
        runner = SoakRunner(trace, nodes=2, requests_per_round=2, chaos=chaos)
        with pytest.raises(InvariantViolation, match="never fired"):
            runner.run()

    def test_chaos_beyond_the_trace_is_rejected(self):
        trace = generate_traffic(small_profile(seed=2, requests=2))
        chaos = ChaosSchedule((ChaosEvent(round=5, kind=KILL),))
        with pytest.raises(ReproError, match="round 5"):
            SoakRunner(trace, requests_per_round=2, chaos=chaos).run()

    def test_kill_needs_a_routed_exchange(self):
        trace = generate_traffic(small_profile(seed=2, requests=2))
        database = trace.databases[trace.requests[0].database_key]
        chaos = ChaosSchedule((ChaosEvent(round=0, kind=KILL, after_outcomes=1),))
        runner = SoakRunner(
            trace,
            exchange=LocalExchange(database, parallel=False),
            chaos=chaos,
            requests_per_round=2,
            verify_parity=False,
        )
        with pytest.raises(ReproError, match="routed exchange"):
            runner.run()

    def test_runner_validation(self):
        trace = generate_traffic(small_profile(seed=2, requests=2))
        with pytest.raises(ValueError):
            SoakRunner(trace, requests_per_round=0)
        with pytest.raises(ValueError):
            SoakRunner(trace, recovery_rounds=0)


# -------------------------------------------------------- metrics under load


class TestMetricsUnderLoad:
    def test_histogram_quantiles_stay_conservative(self):
        histogram = LatencyHistogram()
        samples = [0.0004, 0.002, 0.002, 0.008, 0.03, 0.03, 0.11, 0.4, 1.7, 9.0]
        for sample in samples:
            histogram.record(sample)
        ordered = sorted(samples)
        for q in (0.5, 0.9, 0.99):
            # The histogram's rank convention: the ceil(q * n)-th smallest
            # sample (1-based); conservative means >= that sample's value.
            rank = max(1, -(-q * len(ordered) // 1))
            true_quantile = ordered[int(rank) - 1]
            assert histogram.quantile(q) >= true_quantile, (
                f"q={q}: histogram must never underestimate"
            )

    def test_histogram_snapshot_roundtrip(self):
        histogram = LatencyHistogram()
        for sample in (0.001, 0.05, 0.05, 2.0, 50.0):
            histogram.record(sample)
        rebuilt = LatencyHistogram.from_dict(histogram.as_dict())
        assert rebuilt.counts == histogram.counts
        assert rebuilt.count == histogram.count
        assert rebuilt.sum_seconds == histogram.sum_seconds
        for q in (0.5, 0.99):
            assert rebuilt.quantile(q) == histogram.quantile(q)

    def test_soak_metrics_quantiles_and_in_flight_drain(self):
        """Sustained load: the report's per-status quantiles cover every
        delivered outcome and ``in_flight`` is zero once the soak drains."""
        trace = generate_traffic(small_profile(seed=6, requests=8))
        runner = SoakRunner(trace, nodes=2, requests_per_round=4)
        report = runner.run()
        assert report.admission["final_in_flight"] == 0
        assert OK in report.latency
        for status, entry in report.latency.items():
            assert entry["count"] == report.by_status[status]
            assert entry["p99"] >= entry["p50"] >= 0

    def test_front_end_in_flight_returns_to_zero(self):
        from repro.graphdb import generators

        database = generators.random_labelled_graph(5, 12, "abxy", seed=3)
        server = AsyncResilienceServer(
            ResilienceServer(
                database, parallel=False, cache=LanguageCache(canonical=False)
            )
        )

        async def stream_collect(stream):
            return [outcome async for outcome in stream]

        async def scenario():
            streams = [
                await server.submit(["ax*b", "ab|bc", "aa"]) for _ in range(4)
            ]
            return await asyncio.gather(
                *(stream_collect(stream) for stream in streams)
            )

        with server:
            collected = asyncio.run(scenario())
        assert all(len(outcomes) == 3 for outcomes in collected)
        metrics = server.metrics()
        assert metrics.admission.in_flight == 0
        quantiles = metrics.latency_quantiles((0.5, 0.99), scale=1e3)
        assert quantiles[OK]["count"] == 12
        assert quantiles[OK]["p99"] >= quantiles[OK]["p50"]


# ---------------------------------------------------------------- fault helpers


class TestFaultHelpers:
    def test_poison_language_reduces_to_exit(self):
        workload = poison_workload(["ab"])
        language = workload.specs[0].query
        assert language.__reduce__() == (os._exit, (1,))
        assert isinstance(language, Language)

    def test_slow_language_pickles_into_a_delayed_equivalent(self):
        language = slow_language("ab|bc", seconds=0.05)
        payload = pickle.dumps(language)
        started = time.perf_counter()
        rebuilt = pickle.loads(payload)
        assert time.perf_counter() - started >= 0.05
        assert type(rebuilt) is Language
        assert rebuilt.equivalent_to(Language.from_regex("ab|bc"))

    def test_drain_with_kill_insists_the_kill_fired(self):
        with pytest.raises(AssertionError, match="never fired"):
            drain_with_kill(iter(()), lambda: None, after=1)
