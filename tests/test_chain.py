"""Tests for chain languages and bipartite chain languages (Section 7.1)."""

import pytest

from repro.exceptions import NotApplicableError
from repro.languages import Language, chain


class TestChainDetection:
    @pytest.mark.parametrize("expression", ["ab|bc", "axb|byc", "ab|bc|ca", "axyb|bztc|cd|dea", "a|b"])
    def test_chain_languages(self, expression):
        assert chain.is_chain_language(Language.from_regex(expression)), expression

    @pytest.mark.parametrize("expression", ["aa", "abc|bcd", "ax*b", "abca|cab", "axb|axc"])
    def test_not_chain_languages(self, expression):
        assert not chain.is_chain_language(Language.from_regex(expression)), expression

    def test_chain_languages_are_finite(self):
        assert not chain.is_chain_language(Language.from_regex("ax*b|xd"))


class TestBipartiteness:
    @pytest.mark.parametrize("expression", ["ab|bc", "axb|byc", "axyb|bztc|cd|dea"])
    def test_bcls(self, expression):
        assert chain.is_bipartite_chain_language(Language.from_regex(expression)), expression

    def test_triangle_is_not_bipartite(self):
        # Example 7.3: ab|bc|ca is a chain language but not a BCL.
        assert not chain.is_bipartite_chain_language(Language.from_regex("ab|bc|ca"))

    def test_endpoint_graph(self):
        adjacency = chain.endpoint_graph(Language.from_regex("ab|bc"))
        assert adjacency["a"] == {"b"}
        assert adjacency["b"] == {"a", "c"}

    def test_bipartition(self):
        adjacency = chain.endpoint_graph(Language.from_regex("ab|bc"))
        sides = chain.bipartition(adjacency)
        assert sides is not None
        side_of = {}
        for index, side in enumerate(sides):
            for letter in side:
                side_of[letter] = index
        assert side_of["a"] != side_of["b"]
        assert side_of["b"] != side_of["c"]

    def test_lemma_7_5_subsets_of_bcls_are_bcls(self):
        full = Language.from_regex("axyb|bztc|cd|dea")
        for subset in [["axyb", "cd"], ["bztc"], ["axyb", "bztc", "cd"]]:
            assert chain.is_bipartite_chain_language(Language.from_words(subset))


class TestBclStructure:
    def test_structure_orients_words(self):
        structure = chain.bcl_structure(Language.from_regex("ab|bc"))
        assert structure.forward_words | structure.reversed_words == {"ab", "bc"}
        # The two words are oriented in opposite directions (they share letter b).
        forward_first = {word[0] for word in structure.forward_words}
        backward_first = {word[0] for word in structure.reversed_words}
        assert forward_first.isdisjoint(backward_first) or not structure.reversed_words

    def test_structure_rejects_non_bcl(self):
        with pytest.raises(NotApplicableError):
            chain.bcl_structure(Language.from_regex("ab|bc|ca"))

    def test_single_letter_words_recorded(self):
        structure = chain.bcl_structure(Language.from_words(["ab", "c"]))
        assert structure.single_letter_words == {"c"}


class TestLemma77Extraction:
    @pytest.mark.parametrize("expression", ["ab|bc", "axb|byc", "axyb|bztc|cd|dea", "a|bc", "ε|ab"])
    def test_words_extracted_correctly(self, expression):
        language = Language.from_regex(expression)
        extracted = chain.chain_language_words(language.automaton)
        assert extracted == language.words()

    def test_extraction_rejects_infinite(self):
        with pytest.raises(NotApplicableError):
            chain.chain_language_words(Language.from_regex("ax*b").automaton)
