"""Reusable fault-injection helpers shared by the serving test suites.

These deliberately live with the tests rather than in ``src``: they kill and
stall real worker processes.  Consumers: ``test_async_server.py`` (pool
crash/replace), ``test_exchange.py`` (mid-stream node kills),
``test_traffic.py`` and ``benchmarks/bench_soak.py`` (chaos soak payloads),
and ``conformance_harness.py`` (the kill and soak-replay variants).

* :func:`poison_language` — plans like a normal language in the parent but
  kills any worker process that unpickles it, so every dispatch of its chunk
  breaks the pool (first attempt and retry alike) and its outcomes surface as
  structured ``error`` results.
* :func:`slow_language` — stalls the unpickling worker for a fixed time and
  then behaves exactly like the original language: latency-tail pressure
  without breaking anything, outcomes stay ``ok`` and parity holds.
* :func:`drain_with_kill` / :func:`adrain_with_kill` — drain an outcome
  stream, firing a kill callback after exactly N outcomes have landed
  (mid-stream by construction).
* :class:`ChaosHttpNode` / :class:`ChaosHttpNodeLauncher` — the network-chaos
  transport: a real :class:`~repro.service.exchange.http.HttpNode` whose
  connections misbehave on cue via :meth:`ChaosHttpNode.inject_fault`
  (connection-refused windows, mid-stream disconnects, stalled streams,
  corrupt payloads).  Faults are armed per-handle and consumed
  deterministically at precise protocol points, so a chaos soak over HTTP
  replays bit-for-bit; every raised fault is a *real* exception type
  (``ConnectionRefusedError``, ``ConnectionResetError``, ``socket.timeout``)
  travelling the same client code paths a genuinely broken network would.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ReproError
from repro.languages import Language
from repro.service import QueryOutcome, QuerySpec, Workload
from repro.service.exchange.http import HttpNode, HttpNodeLauncher
from repro.traffic import CORRUPT, DISCONNECT, NETWORK_KINDS, REFUSED, STALL


class _CrashOnUnpickle(Language):
    """Plans like a normal language in the parent; kills any worker process
    that unpickles it (``__reduce__`` makes unpickling call ``os._exit``), so
    every dispatch of its chunk breaks the pool — including the retry."""

    def __reduce__(self):
        return (os._exit, (1,))


def poison_language(expression: str) -> Language:
    language = Language.from_regex(expression)
    language.__class__ = _CrashOnUnpickle
    return language


def _sleep_then_parse(expression: str, seconds: float) -> Language:
    time.sleep(seconds)
    return Language.from_regex(expression)


class _SlowOnUnpickle(Language):
    """Plans like a normal language in the parent; makes the unpickling
    worker sleep before reconstructing the real language, so its chunk adds
    a latency tail without crashing anything."""

    def __reduce__(self):
        return (_sleep_then_parse, (self._slow_expression, self._slow_seconds))


def slow_language(expression: str, seconds: float = 0.05) -> Language:
    language = Language.from_regex(expression)
    language.__class__ = _SlowOnUnpickle
    language._slow_expression = expression
    language._slow_seconds = seconds
    return language


def poison_workload(expressions) -> Workload:
    """A workload whose every query crashes the worker that unpickles it."""
    return Workload(tuple(QuerySpec(poison_language(e)) for e in expressions))


def slow_workload(expressions, seconds: float = 0.05) -> Workload:
    """A workload whose every query stalls its worker, then answers normally."""
    return Workload(tuple(QuerySpec(slow_language(e, seconds)) for e in expressions))


def drain_with_kill(
    iterator, kill: Callable[[], None], *, after: int = 2
) -> list[QueryOutcome]:
    """Drain a sync outcome stream, firing ``kill()`` once exactly ``after``
    outcomes have been delivered (the stream must hold at least that many)."""
    outcomes: list[QueryOutcome] = []
    for outcome in iterator:
        outcomes.append(outcome)
        if len(outcomes) == after:
            kill()
    if len(outcomes) < after:
        raise AssertionError(
            f"stream ended after {len(outcomes)} outcomes; kill at {after} never fired"
        )
    return outcomes


async def adrain_with_kill(
    stream, kill: Callable[[], None], *, after: int = 2
) -> list[QueryOutcome]:
    """Async variant of :func:`drain_with_kill`."""
    outcomes: list[QueryOutcome] = []
    async for outcome in stream:
        outcomes.append(outcome)
        if len(outcomes) == after:
            kill()
    if len(outcomes) < after:
        raise AssertionError(
            f"stream ended after {len(outcomes)} outcomes; kill at {after} never fired"
        )
    return outcomes


# ---------------------------------------------------------------- network chaos


@dataclass(frozen=True)
class _StreamFault:
    """One armed serve-stream fault (disconnect / stall / corrupt)."""

    kind: str
    after_outcomes: int = 0


class _ChaosStream:
    """Wraps an ``HTTPResponse`` so line iteration misbehaves on cue.

    Counts the outcome lines of the ndjson stream; once ``after_outcomes``
    clean ones have been delivered, a *disconnect* fault raises
    ``ConnectionResetError`` in place of the next line and a *corrupt* fault
    substitutes a garbage line (the client must refuse the whole stream, not
    deliver a mangled outcome).  Everything else proxies to the response.
    """

    def __init__(self, response, fault: _StreamFault) -> None:
        self._response = response
        self._fault = fault

    def __getattr__(self, name):
        return getattr(self._response, name)

    def __iter__(self):
        outcome_lines = 0
        for raw in self._response:
            if outcome_lines >= self._fault.after_outcomes:
                if self._fault.kind == DISCONNECT:
                    raise ConnectionResetError(
                        "chaos: connection reset mid-stream "
                        f"(after {outcome_lines} outcomes)"
                    )
                yield b"@@chaos-corrupt-payload@@\n"
                return
            yield raw
            if b'"outcome"' in raw:
                outcome_lines += 1


class _ChaosConnection:
    """Wraps an ``HTTPConnection``; applies a stream fault to ``/serve``.

    Stream faults are taken from the owning node only when the request
    targets ``/serve`` — control requests on the same handle stay clean, so
    an armed fault deterministically hits the next serve dispatch.  A *stall*
    fault never sends the request: the client's next ``getresponse`` sees
    ``socket.timeout``, modelling its request timeout expiring without
    spending the wall-clock wait.
    """

    def __init__(self, inner, node: "ChaosHttpNode") -> None:
        self._inner = inner
        self._chaos_node = node
        self._fault: _StreamFault | None = None

    def request(self, method, path, **kwargs) -> None:
        if path == "/serve":
            self._fault = self._chaos_node._take_stream_fault()
        if self._fault is not None and self._fault.kind == STALL:
            return
        self._inner.request(method, path, **kwargs)

    def getresponse(self):
        if self._fault is not None and self._fault.kind == STALL:
            raise socket.timeout(
                "chaos: stalled stream (simulated request-timeout expiry)"
            )
        response = self._inner.getresponse()
        if self._fault is not None:
            return _ChaosStream(response, self._fault)
        return response

    def close(self) -> None:
        self._inner.close()


class ChaosHttpNode(HttpNode):
    """An :class:`HttpNode` whose transport misbehaves on cue.

    :meth:`inject_fault` arms faults; the handle consumes them at precise
    protocol points, raising the same real exception types a broken network
    would — so retry, re-dispatch, failover and circuit-breaker code paths
    run unmodified.  This is the duck-typed surface the soak runner's
    network chaos kinds dispatch to.
    """

    def __init__(self, node_id, host, port, **kwargs) -> None:
        super().__init__(node_id, host, port, **kwargs)
        self._fault_lock = threading.Lock()
        self._refused_left = 0
        self._stream_faults: deque[_StreamFault] = deque()
        #: kind -> times a fault actually fired (for test assertions).
        self.faults_fired: dict[str, int] = {}

    def inject_fault(self, kind: str, *, count: int = 1, after_outcomes: int = 0) -> None:
        """Arm a fault: ``refused`` refuses the next ``count`` connection
        attempts; ``disconnect`` / ``corrupt`` hit the next serve stream
        after ``after_outcomes`` clean outcomes; ``stall`` hangs the next
        serve connection until the client's timeout."""
        if kind not in NETWORK_KINDS:
            raise ReproError(
                f"unknown network fault {kind!r}; expected one of "
                f"{sorted(NETWORK_KINDS)}"
            )
        with self._fault_lock:
            if kind == REFUSED:
                self._refused_left += count
            else:
                self._stream_faults.append(_StreamFault(kind, after_outcomes))

    @property
    def pending_faults(self) -> int:
        with self._fault_lock:
            return self._refused_left + len(self._stream_faults)

    def _record_fired_locked(self, kind: str) -> None:
        self.faults_fired[kind] = self.faults_fired.get(kind, 0) + 1

    def _take_stream_fault(self) -> _StreamFault | None:
        with self._fault_lock:
            if not self._stream_faults:
                return None
            fault = self._stream_faults.popleft()
            self._record_fired_locked(fault.kind)
            return fault

    def _connect(self):
        with self._fault_lock:
            refused = self._refused_left > 0
            if refused:
                self._refused_left -= 1
                self._record_fired_locked(REFUSED)
        if refused:
            raise ConnectionRefusedError(
                f"chaos: connection refused by node {self.node_id!r}"
            )
        return _ChaosConnection(super()._connect(), self)


class ChaosHttpNodeLauncher(HttpNodeLauncher):
    """An :class:`HttpNodeLauncher` handing out :class:`ChaosHttpNode`
    handles — nodes and wire format are the real thing; only the client-side
    connection layer gains the fault hook.  Because ``manager.replace`` goes
    through the launcher, healed replacements stay fault-capable."""

    handle_class = ChaosHttpNode
