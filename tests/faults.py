"""Reusable fault-injection helpers shared by the serving test suites.

These deliberately live with the tests rather than in ``src``: they kill and
stall real worker processes.  Consumers: ``test_async_server.py`` (pool
crash/replace), ``test_exchange.py`` (mid-stream node kills),
``test_traffic.py`` and ``benchmarks/bench_soak.py`` (chaos soak payloads),
and ``conformance_harness.py`` (the kill and soak-replay variants).

* :func:`poison_language` — plans like a normal language in the parent but
  kills any worker process that unpickles it, so every dispatch of its chunk
  breaks the pool (first attempt and retry alike) and its outcomes surface as
  structured ``error`` results.
* :func:`slow_language` — stalls the unpickling worker for a fixed time and
  then behaves exactly like the original language: latency-tail pressure
  without breaking anything, outcomes stay ``ok`` and parity holds.
* :func:`drain_with_kill` / :func:`adrain_with_kill` — drain an outcome
  stream, firing a kill callback after exactly N outcomes have landed
  (mid-stream by construction).
"""

from __future__ import annotations

import os
import time
from typing import Callable

from repro.languages import Language
from repro.service import QueryOutcome, QuerySpec, Workload


class _CrashOnUnpickle(Language):
    """Plans like a normal language in the parent; kills any worker process
    that unpickles it (``__reduce__`` makes unpickling call ``os._exit``), so
    every dispatch of its chunk breaks the pool — including the retry."""

    def __reduce__(self):
        return (os._exit, (1,))


def poison_language(expression: str) -> Language:
    language = Language.from_regex(expression)
    language.__class__ = _CrashOnUnpickle
    return language


def _sleep_then_parse(expression: str, seconds: float) -> Language:
    time.sleep(seconds)
    return Language.from_regex(expression)


class _SlowOnUnpickle(Language):
    """Plans like a normal language in the parent; makes the unpickling
    worker sleep before reconstructing the real language, so its chunk adds
    a latency tail without crashing anything."""

    def __reduce__(self):
        return (_sleep_then_parse, (self._slow_expression, self._slow_seconds))


def slow_language(expression: str, seconds: float = 0.05) -> Language:
    language = Language.from_regex(expression)
    language.__class__ = _SlowOnUnpickle
    language._slow_expression = expression
    language._slow_seconds = seconds
    return language


def poison_workload(expressions) -> Workload:
    """A workload whose every query crashes the worker that unpickles it."""
    return Workload(tuple(QuerySpec(poison_language(e)) for e in expressions))


def slow_workload(expressions, seconds: float = 0.05) -> Workload:
    """A workload whose every query stalls its worker, then answers normally."""
    return Workload(tuple(QuerySpec(slow_language(e, seconds)) for e in expressions))


def drain_with_kill(
    iterator, kill: Callable[[], None], *, after: int = 2
) -> list[QueryOutcome]:
    """Drain a sync outcome stream, firing ``kill()`` once exactly ``after``
    outcomes have been delivered (the stream must hold at least that many)."""
    outcomes: list[QueryOutcome] = []
    for outcome in iterator:
        outcomes.append(outcome)
        if len(outcomes) == after:
            kill()
    if len(outcomes) < after:
        raise AssertionError(
            f"stream ended after {len(outcomes)} outcomes; kill at {after} never fired"
        )
    return outcomes


async def adrain_with_kill(
    stream, kill: Callable[[], None], *, after: int = 2
) -> list[QueryOutcome]:
    """Async variant of :func:`drain_with_kill`."""
    outcomes: list[QueryOutcome] = []
    async for outcome in stream:
        outcomes.append(outcome)
        if len(outcomes) == after:
            kill()
    if len(outcomes) < after:
        raise AssertionError(
            f"stream ended after {len(outcomes)} outcomes; kill at {after} never fired"
        )
    return outcomes
