"""Tests for the Figure 1 example catalogue."""

import pytest

from repro.languages import Language
from repro.languages.examples import (
    ALL_EXAMPLES,
    FIGURE_1_LANGUAGES,
    NP_HARD,
    PTIME,
    UNCLASSIFIED,
    example_by_regex,
)


class TestCatalogue:
    def test_figure_1_has_22_languages(self):
        assert len(FIGURE_1_LANGUAGES) == 22

    def test_all_examples_parse(self):
        for example in ALL_EXAMPLES:
            language = example.language()
            assert isinstance(language, Language)
            assert not language.is_empty()

    def test_finiteness_flags_are_correct(self):
        for example in ALL_EXAMPLES:
            assert example.language().is_finite() == example.finite, example.regex

    def test_complexity_values_are_known(self):
        assert {example.complexity for example in ALL_EXAMPLES} == {PTIME, NP_HARD, UNCLASSIFIED}

    def test_example_by_regex(self):
        assert example_by_regex("aa").complexity == NP_HARD
        with pytest.raises(KeyError):
            example_by_regex("zzz")

    def test_region_matches_language_properties(self):
        for example in FIGURE_1_LANGUAGES:
            language = example.language()
            if "local" in example.region:
                assert language.is_local(), example.regex
            if "bipartite chain" in example.region:
                assert language.is_bipartite_chain_language(), example.regex
            if "one-dangling" in example.region:
                assert language.one_dangling_decomposition() is not None, example.regex
            if "four-legged" in example.region:
                assert language.infix_free().is_four_legged(), example.regex
            if "non-star-free" in example.region:
                assert not language.is_star_free(), example.regex
            if "repeated letter" in example.region:
                assert language.infix_free().has_repeated_letter_word(), example.regex
